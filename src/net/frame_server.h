#ifndef CTRLSHED_NET_FRAME_SERVER_H_
#define CTRLSHED_NET_FRAME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"

namespace ctrlshed {

struct FrameServerOptions {
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  std::string bind_address = "127.0.0.1";
  int max_clients = 64;
  /// Per-frame payload ceiling handed to the decoder.
  size_t max_payload = kMaxFramePayload;
  /// Per-connection outbound buffer cap; a peer that stops reading past
  /// this is disconnected rather than allowed to wedge the server.
  size_t max_out_buffer = size_t{4} << 20;
  /// How long Stop() keeps flushing pending outbound bytes (wall seconds).
  double drain_timeout_wall = 0.25;
};

/// Dependency-free poll()-based TCP server speaking the length-prefixed
/// frame protocol, in the style of TelemetryServer: one serve thread, all
/// sockets non-blocking, a self-pipe for wakeups, bounded buffers
/// everywhere, MSG_NOSIGNAL on every send.
///
/// Decoded frames are delivered to the OnFrame handler ON THE SERVE
/// THREAD, which makes it the single producer the SPSC ingress rings
/// require. A stream that fails the frame magic / bounds checks is
/// counted and the connection dropped — malformed *payloads* inside
/// well-formed frames are the handler's policy (it counts its own
/// rejects).
class FrameServer {
 public:
  /// `conn_id` is stable for the lifetime of one connection, never reused.
  using FrameHandler = std::function<void(uint64_t conn_id, const Frame&)>;
  using DisconnectHandler = std::function<void(uint64_t conn_id)>;

  explicit FrameServer(FrameServerOptions options);
  ~FrameServer();

  /// Handlers must be installed before Start.
  void OnFrame(FrameHandler handler);
  void OnDisconnect(DisconnectHandler handler);

  /// Binds and spawns the serve thread; aborts if the port cannot be
  /// bound (startup misconfiguration, same policy as TelemetryServer).
  void Start();
  void Stop();

  /// Queues `bytes` (already framed) for `conn_id`. Thread-safe; returns
  /// false if the connection is gone or its buffer is full (in which case
  /// the connection is dropped — a control channel that backlogs 4MB is
  /// dead for our purposes).
  bool Send(uint64_t conn_id, std::string bytes);

  int port() const { return port_; }
  uint64_t connections_accepted() const { return connections_accepted_.load(); }
  uint64_t frames_received() const { return frames_received_.load(); }
  /// Streams dropped for framing corruption (bad magic/type/length).
  uint64_t corrupt_streams() const { return corrupt_streams_.load(); }

 private:
  struct Conn;
  struct PendingFrame {
    uint64_t conn_id;
    Frame frame;
  };

  void Serve();
  void AcceptNew();
  void HandleReadable(Conn* c, std::vector<PendingFrame>* decoded);
  void FlushConn(Conn* c);
  void CloseConn(Conn* c);
  void Wake();

  FrameServerOptions options_;
  FrameHandler on_frame_;
  DisconnectHandler on_disconnect_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;

  std::mutex mu_;  // guards conns_, their out buffers, and disconnected_
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<uint64_t> disconnected_;  // closed ids awaiting handler dispatch
  uint64_t next_conn_id_ = 1;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> corrupt_streams_{0};
};

}  // namespace ctrlshed

#endif  // CTRLSHED_NET_FRAME_SERVER_H_
