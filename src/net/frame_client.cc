#include "net/frame_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/macros.h"
#include "net/socket_util.h"

namespace ctrlshed {

FrameClient::~FrameClient() { Close(); }

void FrameClient::OnFrame(FrameHandler handler) {
  CS_CHECK_MSG(fd_ < 0, "handler must be set before Connect");
  on_frame_ = std::move(handler);
}

bool FrameClient::Connect(const std::string& host, int port,
                          double timeout_wall_seconds) {
  CS_CHECK_MSG(fd_ < 0, "Connect called twice");
  fd_ = ConnectWithRetry(host, port, timeout_wall_seconds);
  if (fd_ < 0) return false;
  connected_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { ReadLoop(); });
  return true;
}

bool FrameClient::Send(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (!connected_.load(std::memory_order_acquire)) return false;
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    connected_.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void FrameClient::ReadLoop() {
  FrameDecoder decoder;
  char buf[16384];
  while (true) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    bool corrupt = false;
    while (true) {
      const FrameDecoder::Status st = decoder.Next(&frame);
      if (st == FrameDecoder::Status::kNeedMore) break;
      if (st == FrameDecoder::Status::kCorrupt) {
        corrupt_streams_.fetch_add(1, std::memory_order_relaxed);
        corrupt = true;
        break;
      }
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      if (on_frame_ && !closing_.load(std::memory_order_acquire)) {
        on_frame_(frame);
      }
    }
    if (corrupt) break;
  }
  connected_.store(false, std::memory_order_release);
}

void FrameClient::Close() {
  if (fd_ < 0) return;
  closing_.store(true, std::memory_order_release);
  connected_.store(false, std::memory_order_release);
  // Shut the socket down so the reader's blocking recv returns; close the
  // fd only after the thread exits (no fd reuse race).
  shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  close(fd_);
  fd_ = -1;
}

}  // namespace ctrlshed
