#ifndef CTRLSHED_NET_FRAME_H_
#define CTRLSHED_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/tuple.h"

namespace ctrlshed {

/// Message kinds carried by the length-prefixed cluster framing. One codec
/// serves all three links: producer -> node tuple ingress, node ->
/// controller stats reports, controller -> node actuation commands.
enum class FrameType : uint8_t {
  kTupleBatch = 1,   ///< producer -> node: a batch of tuples from one source
  kHello = 2,        ///< node -> controller: membership announcement
  kStatsReport = 3,  ///< node -> controller: one period's counter deltas
  kActuation = 4,    ///< controller -> node: the v(k) command
  kAck = 5,          ///< node -> controller: realized actuation
  kHelloAck = 6,     ///< controller -> node: hello reply w/ clock exchange
};

/// Frame header: magic (4B LE) + type (1B) + payload length (4B LE).
/// The magic doubles as stream-corruption detection — a desynced or
/// garbage-speaking peer fails the magic check and is disconnected rather
/// than interpreted.
inline constexpr uint32_t kFrameMagic = 0x31465443u;  // "CTF1" little-endian
inline constexpr size_t kFrameHeaderBytes = 9;
/// Hard payload ceiling (same spirit as trace_io's kMaxSlots: one corrupt
/// length must never turn into a giant allocation).
inline constexpr size_t kMaxFramePayload = size_t{1} << 20;

struct Frame {
  FrameType type = FrameType::kTupleBatch;
  std::string payload;
};

// --- Little-endian primitives (shared with cluster/wire.cc) --------------

void PutU32(uint32_t v, std::string* out);
void PutU64(uint64_t v, std::string* out);
void PutF64(double v, std::string* out);

/// Bounds-checked sequential reader over a payload. Every Read* returns
/// false (and poisons the reader) on overrun, so decoders can chain reads
/// and check once. Finiteness policy stays with the message decoders.
class WireReader {
 public:
  explicit WireReader(const std::string& payload)
      : data_(reinterpret_cast<const uint8_t*>(payload.data())),
        size_(payload.size()) {}

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadF64(double* v);
  /// Reads `n` raw bytes into *v (used for length-prefixed strings).
  bool ReadBytes(size_t n, std::string* v);

  /// True when every byte was consumed — decoders reject trailing garbage.
  bool AtEnd() const { return ok_ && pos_ == size_; }
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Appends one framed message (header + payload) to `out`.
void AppendFrame(FrameType type, const std::string& payload, std::string* out);

/// Incremental frame extractor over a TCP byte stream. Feed() appends raw
/// received bytes; Next() pops complete frames. Corruption (bad magic,
/// unknown type, oversized length) is unrecoverable for a byte stream —
/// the caller must drop the connection.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *out holds the next frame
    kCorrupt,   ///< stream desynced/hostile; drop the connection
  };

  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n);
  Status Next(Frame* out);

  size_t buffered() const { return buf_.size(); }

 private:
  size_t max_payload_;
  std::string buf_;
};

// --- Tuple batch codec ----------------------------------------------------

/// Payload: source (u32), count (u32), then count x (arrival_time f64,
/// value f64, aux f64). Lineage and port are engine-local and never travel.
inline constexpr size_t kTupleWireBytes = 24;
inline constexpr uint32_t kMaxTuplesPerFrame =
    static_cast<uint32_t>((kMaxFramePayload - 8) / kTupleWireBytes);

struct TupleBatch {
  uint32_t source = 0;
  std::vector<Tuple> tuples;
};

/// Encodes a full frame (header included), ready to send.
std::string EncodeTupleBatchFrame(uint32_t source, const Tuple* tuples,
                                  size_t n);

/// Hardened decode of a kTupleBatch payload: rejects truncated batches,
/// count/length mismatches (trailing garbage), and non-finite
/// arrival_time/value/aux. Returns false without touching engine state so
/// the caller can count the drop (net.ingress.rejected) and move on.
bool DecodeTupleBatch(const std::string& payload, TupleBatch* out);

}  // namespace ctrlshed

#endif  // CTRLSHED_NET_FRAME_H_
