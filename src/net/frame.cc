#include "net/frame.h"

#include <cmath>
#include <cstring>

#include "common/macros.h"

namespace ctrlshed {

namespace {

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

bool KnownType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kTupleBatch) &&
         t <= static_cast<uint8_t>(FrameType::kHelloAck);
}

}  // namespace

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v);
  b[1] = static_cast<char>(v >> 8);
  b[2] = static_cast<char>(v >> 16);
  b[3] = static_cast<char>(v >> 24);
  out->append(b, 4);
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

bool WireReader::ReadU32(uint32_t* v) {
  if (!ok_ || size_ - pos_ < 4) {
    ok_ = false;
    return false;
  }
  *v = GetU32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  if (!ok_ || size_ - pos_ < 8) {
    ok_ = false;
    return false;
  }
  *v = GetU64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool WireReader::ReadF64(double* v) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::ReadBytes(size_t n, std::string* v) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  v->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  CS_CHECK_MSG(payload.size() <= kMaxFramePayload, "frame payload too large");
  PutU32(kFrameMagic, out);
  out->push_back(static_cast<char>(type));
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

void FrameDecoder::Feed(const char* data, size_t n) { buf_.append(data, n); }

FrameDecoder::Status FrameDecoder::Next(Frame* out) {
  if (buf_.size() < kFrameHeaderBytes) return Status::kNeedMore;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf_.data());
  if (GetU32(p) != kFrameMagic) return Status::kCorrupt;
  const uint8_t type = p[4];
  const uint32_t len = GetU32(p + 5);
  if (!KnownType(type) || len > max_payload_) return Status::kCorrupt;
  if (buf_.size() < kFrameHeaderBytes + len) return Status::kNeedMore;
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buf_, kFrameHeaderBytes, len);
  buf_.erase(0, kFrameHeaderBytes + len);
  return Status::kFrame;
}

std::string EncodeTupleBatchFrame(uint32_t source, const Tuple* tuples,
                                  size_t n) {
  CS_CHECK_MSG(n <= kMaxTuplesPerFrame, "tuple batch exceeds frame capacity");
  std::string payload;
  payload.reserve(8 + n * kTupleWireBytes);
  PutU32(source, &payload);
  PutU32(static_cast<uint32_t>(n), &payload);
  for (size_t i = 0; i < n; ++i) {
    PutF64(tuples[i].arrival_time, &payload);
    PutF64(tuples[i].value, &payload);
    PutF64(tuples[i].aux, &payload);
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(FrameType::kTupleBatch, payload, &frame);
  return frame;
}

bool DecodeTupleBatch(const std::string& payload, TupleBatch* out) {
  WireReader r(payload);
  uint32_t source = 0;
  uint32_t count = 0;
  if (!r.ReadU32(&source) || !r.ReadU32(&count)) return false;
  // Exact-size check rejects both truncated batches and trailing garbage;
  // the count bound keeps a hostile header from driving a huge reserve.
  if (count > kMaxTuplesPerFrame) return false;
  if (r.remaining() != static_cast<size_t>(count) * kTupleWireBytes) {
    return false;
  }
  out->source = source;
  out->tuples.clear();
  out->tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Tuple t;
    if (!r.ReadF64(&t.arrival_time) || !r.ReadF64(&t.value) ||
        !r.ReadF64(&t.aux)) {
      return false;
    }
    // A NaN/inf arrival time would poison the delay accounting the control
    // loop feeds on; reject the whole frame (same all-or-nothing policy as
    // trace parsing).
    if (!std::isfinite(t.arrival_time) || !std::isfinite(t.value) ||
        !std::isfinite(t.aux)) {
      return false;
    }
    t.source = static_cast<int>(source);
    out->tuples.push_back(t);
  }
  return r.AtEnd();
}

}  // namespace ctrlshed
