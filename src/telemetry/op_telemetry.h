#ifndef CTRLSHED_TELEMETRY_OP_TELEMETRY_H_
#define CTRLSHED_TELEMETRY_OP_TELEMETRY_H_

#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "engine/query_network.h"
#include "telemetry/telemetry.h"

namespace ctrlshed {

/// EngineObserver that instruments the plant at operator granularity:
/// every invocation becomes an `op:<name>` span on the pumping thread's
/// trace buffer, and per-operator `engine.op.<name>.processed` /
/// `engine.op.<name>.dropped` counters accumulate in the metrics registry
/// — so trace.json and GET /metrics show where inside the query network
/// the cost lives and where the in-network shedder is dropping.
///
/// Span names are interned in the Tracer (operator names live in the
/// query network, which may be destroyed before the trace serializes).
/// Counters are registry-owned, so shards sharing one registry aggregate
/// naturally — the same convention as the rt pump counters. With a null
/// trace buffer only the counters run; the per-invocation overhead is two
/// relaxed atomic adds.
class OperatorTelemetry : public EngineObserver {
 public:
  /// `telemetry` must be non-null and outlive this observer. `buf` is the
  /// owning thread's trace buffer (null when tracing is off). Counters and
  /// interned names cover every operator of `network` (finalized).
  OperatorTelemetry(Telemetry* telemetry, TraceBuffer* buf,
                    const QueryNetwork& network);

  void OnInvocationStart(const OperatorBase& op) override;
  void OnInvocationEnd(const OperatorBase& op, double cost_seconds) override;
  void OnInvocationBatch(const OperatorBase& op, uint64_t n,
                         double cost_seconds) override;
  void OnQueueDrop(const OperatorBase& op) override;

 private:
  struct PerOp {
    const char* span_name = nullptr;  ///< Interned; null when tracing off.
    Counter* processed = nullptr;
    Counter* dropped = nullptr;
  };

  TraceBuffer* buf_;
  std::vector<PerOp> ops_;  ///< Indexed by OperatorBase::id().
  int64_t start_us_ = 0;    ///< Invocations never nest on one engine.
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_OP_TELEMETRY_H_
