#include "telemetry/metrics_registry.h"

#include <cstdio>

namespace ctrlshed {

namespace {

// Locale-independent shortest-round-trip double formatting for JSON.
void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               double min_value,
                                               double max_value,
                                               double growth) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<HistogramMetric>(min_value, max_value, growth);
  }
  return slot.get();
}

void MetricsRegistry::SetExternalHistogramStats(
    const std::string& name, const MetricsSnapshot::HistogramStats& s) {
  std::lock_guard<std::mutex> lock(mu_);
  external_histograms_[name] = s;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, s] : external_histograms_) {
    snap.histograms[name] = s;
  }
  for (const auto& [name, h] : histograms_) {
    const LatencyHistogram hist = h->Snapshot();
    MetricsSnapshot::HistogramStats s;
    s.count = hist.count();
    s.sum = hist.Mean() * static_cast<double>(hist.count());
    s.min = hist.min();
    s.max = hist.max();
    s.p50 = hist.Quantile(0.50);
    s.p95 = hist.Quantile(0.95);
    s.p99 = hist.Quantile(0.99);
    snap.histograms[name] = s;
  }
  return snap;
}

void MetricsRegistry::WriteJsonLine(double t_seconds, std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"t\":";
  WriteDouble(out, t_seconds);
  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << c->Value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":";
    WriteDouble(out, g->Value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    const LatencyHistogram snap = h->Snapshot();
    out << "\"" << name << "\":{\"count\":" << snap.count() << ",\"mean\":";
    WriteDouble(out, snap.Mean());
    out << ",\"min\":";
    WriteDouble(out, snap.min());
    out << ",\"max\":";
    WriteDouble(out, snap.max());
    out << ",\"p50\":";
    WriteDouble(out, snap.Quantile(0.50));
    out << ",\"p95\":";
    WriteDouble(out, snap.Quantile(0.95));
    out << ",\"p99\":";
    WriteDouble(out, snap.Quantile(0.99));
    out << "}";
  }
  for (const auto& [name, s] : external_histograms_) {
    if (histograms_.count(name) > 0) continue;  // local recording wins
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << s.count << ",\"mean\":";
    WriteDouble(out, s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0);
    out << ",\"min\":";
    WriteDouble(out, s.min);
    out << ",\"max\":";
    WriteDouble(out, s.max);
    out << ",\"p50\":";
    WriteDouble(out, s.p50);
    out << ",\"p95\":";
    WriteDouble(out, s.p95);
    out << ",\"p99\":";
    WriteDouble(out, s.p99);
    out << "}";
  }
  out << "}}\n";
}

}  // namespace ctrlshed
