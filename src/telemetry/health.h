#ifndef CTRLSHED_TELEMETRY_HEALTH_H_
#define CTRLSHED_TELEMETRY_HEALTH_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/recorder.h"
#include "telemetry/metrics_registry.h"

namespace ctrlshed {

/// Online estimator of the measured headroom H_hat: realized base-load
/// seconds drained per busy second, EWMA-smoothed over control periods.
/// In the engine's processing model a tuple of base load l occupies the
/// CPU for l / H seconds, so drained/busy recovers H at any load level —
/// including under cost-multiplier traces, where it reports the
/// *effective* headroom the plant is actually delivering. Report-only:
/// nothing in the control law reads it.
class HeadroomTracker {
 public:
  explicit HeadroomTracker(double ewma = 0.3) : ewma_(ewma) {}

  /// Feeds one period's deltas. Periods with ~zero busy time carry no
  /// information and leave the estimate unchanged. Returns value().
  double Update(double drained_base_load, double busy_seconds) {
    if (busy_seconds > 1e-9 && drained_base_load >= 0.0) {
      const double sample = drained_base_load / busy_seconds;
      value_ = value_ == value_ ? ewma_ * sample + (1.0 - ewma_) * value_
                                : sample;
    }
    return value_;
  }

  /// Current estimate; NaN until the first informative period.
  double value() const { return value_; }

 private:
  double ewma_;
  double value_ = std::numeric_limits<double>::quiet_NaN();
};

/// Thresholds for the health verdict. Defaults are tuned so a 2x
/// steady overload (the CI smoke workloads; alpha ~= 0.5) stays `ok`
/// while a sustained 3x overload (alpha ~= 0.67) reports
/// `alpha_saturated`.
struct HealthOptions {
  size_t window = 30;  ///< Sliding window, control periods.
  /// A period sheds "saturated" when alpha is at or above this level…
  double alpha_saturation_level = 0.6;
  /// …and the loop degrades when that holds for this fraction of the
  /// window.
  double alpha_saturated_frac = 0.5;
  /// Tracking-error RMS (|yd - y_hat| / yd over actively-shedding
  /// periods) degraded / critical levels.
  double tracking_rms_degraded = 0.5;
  double tracking_rms_critical = 1.0;
  /// Fraction of consecutive-period u sign flips (both sides above the
  /// noise floor) that flags oscillation.
  double oscillation_degraded = 0.6;
  /// |u| below this fraction of fin is steady-state noise, not a flip.
  double u_noise_floor_frac = 0.05;
  /// Tracer/SSE self-loss rate that degrades the verdict.
  double self_loss_degraded = 0.10;
  /// |H_hat - H| / H beyond this adds a headroom_drift warning.
  double headroom_drift_warn = 0.25;
  /// Below this many observed periods the loop is warming up and only
  /// stale_node can degrade it.
  size_t min_periods = 8;
};

enum class HealthVerdict : uint8_t { kOk = 0, kDegraded = 1, kCritical = 2 };

const char* HealthVerdictName(HealthVerdict v);

/// One evaluated snapshot of the loop's health: a verdict, the reasons
/// that drove it, non-degrading warnings, and the raw diagnostics.
struct HealthReport {
  HealthVerdict verdict = HealthVerdict::kOk;
  std::vector<std::string> reasons;   ///< e.g. "alpha_saturated".
  std::vector<std::string> warnings;  ///< e.g. "headroom_drift".
  uint64_t periods = 0;               ///< Periods observed in total.
  double tracking_rms = 0.0;
  double alpha_sat_frac = 0.0;
  double oscillation = 0.0;
  uint64_t stale_nodes = 0;
  uint64_t known_nodes = 0;
  double trace_loss = 0.0;
  double sse_loss = 0.0;
  double h_hat = std::numeric_limits<double>::quiet_NaN();
  double h_configured = std::numeric_limits<double>::quiet_NaN();

  /// {"verdict":"ok","reasons":[…],"warnings":[…],"periods":N,
  ///  "metrics":{…}} — the GET /health body.
  std::string ToJson() const;

  /// ok/degraded -> 200 (the verdict is in the body), critical -> 503.
  int HttpStatus() const;

  /// One-line summary for the end-of-run CLI output.
  std::string Summary() const;
};

/// Derives per-period control-loop diagnostics — tracking-error RMS over
/// a sliding window, alpha-saturation fraction, u sign-flip oscillation
/// score, stale-node count, telemetry self-loss — and folds them into an
/// ok/degraded/critical verdict. ObservePeriod is called from the owning
/// control thread; Report may be called from any thread (the telemetry
/// server's /health handler), so state sits behind a small mutex touched
/// once per period and per scrape.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions opts = HealthOptions{});

  /// Feeds one finished control period.
  void ObservePeriod(const PeriodRecord& row);

  /// Cluster controllers report node staleness each period.
  void SetStaleNodes(uint64_t stale, uint64_t known);

  /// Cumulative telemetry self-loss counters (tracer ring + SSE).
  void SetSelfLoss(uint64_t trace_events, uint64_t trace_dropped,
                   uint64_t sse_published, uint64_t sse_dropped);

  /// Configured vs measured headroom (per worker), for drift warnings.
  void SetHeadroom(double configured, double measured);

  /// Evaluates the current verdict.
  HealthReport Report() const;

 private:
  mutable std::mutex mu_;
  HealthOptions opts_;
  uint64_t periods_ = 0;
  // Sliding windows, circular over opts_.window entries.
  std::vector<double> alpha_;
  std::vector<double> err_rel_;  ///< |e|/yd; NaN when not actively shedding.
  std::vector<double> u_;
  std::vector<double> fin_;
  uint64_t stale_nodes_ = 0;
  uint64_t known_nodes_ = 0;
  double trace_loss_ = 0.0;
  double sse_loss_ = 0.0;
  double h_configured_ = std::numeric_limits<double>::quiet_NaN();
  double h_hat_ = std::numeric_limits<double>::quiet_NaN();
};

/// The ctrlshed.health.* gauge family (rendered by the Prometheus
/// exporter as ctrlshed_health_*). Init once, Publish per period.
class HealthGauges {
 public:
  void Init(MetricsRegistry* registry);
  void Publish(const HealthReport& r);

 private:
  Gauge* verdict_ = nullptr;
  Gauge* tracking_rms_ = nullptr;
  Gauge* alpha_sat_frac_ = nullptr;
  Gauge* oscillation_ = nullptr;
  Gauge* stale_nodes_ = nullptr;
  Gauge* h_hat_ = nullptr;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_HEALTH_H_
