#ifndef CTRLSHED_TELEMETRY_METRICS_REGISTRY_H_
#define CTRLSHED_TELEMETRY_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "metrics/histogram.h"

namespace ctrlshed {

/// Monotonic counter; any thread, relaxed — exactly the RtSharedStats
/// discipline, behind a name.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Absolute set — for mirroring a cumulative total maintained elsewhere
  /// (a federated node counter, the tracer's drop count). Single-writer
  /// per counter by convention; Add and Store must not be mixed.
  void Store(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge; any thread, relaxed.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A named LatencyHistogram behind a small mutex. Recording sites are the
/// periodic paths (one pump, one control tick), so contention is nil; the
/// lock exists only so the exporter can snapshot mid-run.
class HistogramMetric {
 public:
  HistogramMetric(double min_value, double max_value, double growth)
      : hist_(min_value, max_value, growth) {}

  void Record(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Record(v);
  }

  /// Copy for quantile queries without holding the lock across them.
  LatencyHistogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  LatencyHistogram hist_;
};

/// A point-in-time copy of every metric, detached from the registry's
/// locks. Renderers (the JSONL exporter, the Prometheus endpoint) iterate
/// this instead of holding the registry mutex across formatting.
struct MetricsSnapshot {
  struct HistogramStats {
    uint64_t count = 0;
    double sum = 0.0;  ///< mean x count — Prometheus' `_sum` convention.
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Name -> metric registry with a JSONL snapshot writer. Get* calls are
/// mutex-protected and idempotent (same name returns the same object);
/// call them once at setup and cache the pointer — the pointers are stable
/// for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Histogram layout defaults suit wall-clock latencies (1 us .. 1000 s
  /// at 8% resolution). A second Get with the same name ignores the layout
  /// arguments and returns the existing histogram.
  HistogramMetric* GetHistogram(const std::string& name,
                                double min_value = 1e-6,
                                double max_value = 1e3,
                                double growth = 1.08);

  /// Stores pre-aggregated histogram stats under `name` — for federated
  /// histograms whose quantiles were computed on another process and
  /// arrive already reduced (they cannot be Record()ed point by point).
  /// Merged into Snapshot()/WriteJsonLine next to locally recorded
  /// histograms; a locally recorded histogram with the same name wins.
  void SetExternalHistogramStats(const std::string& name,
                                 const MetricsSnapshot::HistogramStats& s);

  /// Copies every metric's current value (any thread).
  MetricsSnapshot Snapshot() const;

  /// Writes one JSON object line: {"t":…,"counters":{…},"gauges":{…},
  /// "histograms":{name:{count,mean,min,max,p50,p95,p99}}}. `t_seconds`
  /// is the caller's notion of elapsed time (the exporter passes wall
  /// seconds since it started).
  void WriteJsonLine(double t_seconds, std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
  std::map<std::string, MetricsSnapshot::HistogramStats>
      external_histograms_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_METRICS_REGISTRY_H_
