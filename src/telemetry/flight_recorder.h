#ifndef CTRLSHED_TELEMETRY_FLIGHT_RECORDER_H_
#define CTRLSHED_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "metrics/recorder.h"

namespace ctrlshed {

/// Trivially-copyable snapshot of one control period, sized for a
/// preallocated ring the crash path can walk without allocating.
struct FlightPeriod {
  uint64_t k = 0;
  double t = 0.0;
  double yd = 0.0;
  double fin = 0.0;
  double admitted = 0.0;
  double fout = 0.0;
  double queue = 0.0;
  double cost = 0.0;
  double y_hat = 0.0;
  double v = 0.0;
  double alpha = 0.0;
  double lateness = 0.0;
  double queue_shed = 0.0;
  double h_hat = 0.0;      ///< Measured headroom; NaN when not estimated.
  uint8_t site = 0;        ///< ActuationSite as an integer.
};

/// One annotated event: config changes, actuation-site switches, node
/// join/stale/readmit, decode rejects. Fixed-size strings so the crash
/// dump never touches the heap.
struct FlightEvent {
  double t = -1.0;     ///< Caller's clock (trace s); -1 when unknown.
  char what[32] = {};  ///< Category, e.g. "site_switch", "node_stale".
  char detail[96] = {};
};

/// A fixed-capacity ring of the last control periods plus recent
/// annotated events, kept by every control loop (sim FeedbackLoop,
/// RtLoop, NodeAgent, ClusterControlLoop). Construction registers the
/// recorder in a process-global slot table; a flight dump — triggered by
/// a CS_CHECK failure (fatal hook), SIGSEGV/SIGABRT, SIGUSR1, or
/// `POST /debug/dump` — walks every registered recorder and writes their
/// rings as JSON with plain write() calls, no allocation.
///
/// Threading: RecordPeriod has a single writer (the owning control
/// thread). RecordEvent may be called from any thread (slots are claimed
/// with fetch_add). The dump path is a concurrent reader with no lock:
/// an entry being overwritten at crash time can be torn — acceptable for
/// a best-effort post-mortem, and only ever the oldest entry in the ring.
class FlightRecorder {
 public:
  static constexpr size_t kPeriodCapacity = 256;
  static constexpr size_t kEventCapacity = 128;

  explicit FlightRecorder(const char* name);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one finished period (owning control thread only).
  void RecordPeriod(const PeriodRecord& row);

  /// Appends one annotated event (any thread). Strings are truncated to
  /// the FlightEvent field sizes.
  void RecordEvent(const char* what, const char* detail, double t = -1.0);

  const char* name() const { return name_; }
  uint64_t periods_recorded() const {
    return period_cursor_.load(std::memory_order_acquire);
  }
  uint64_t events_recorded() const {
    return event_cursor_.load(std::memory_order_acquire);
  }

 private:
  friend bool WriteFlightDump(const char* reason, const char* detail);

  char name_[32] = {};
  FlightPeriod periods_[kPeriodCapacity];
  FlightEvent events_[kEventCapacity];
  std::atomic<uint64_t> period_cursor_{0};
  std::atomic<uint64_t> event_cursor_{0};
};

/// Sets where flight dumps are written (default
/// "ctrlshed.flightdump.json" in the working directory). The path is
/// copied into static storage so signal handlers can reach it; paths
/// longer than 511 bytes are rejected (returns false).
bool SetFlightDumpPath(const std::string& path);
std::string FlightDumpPath();

/// Installs the CS_CHECK fatal hook plus SIGSEGV/SIGABRT/SIGUSR1
/// handlers that write a flight dump (SIGUSR1 dumps and continues; the
/// fatal signals dump, restore the default disposition, and re-raise).
/// Idempotent. The CS_CHECK hook alone is also installed by the first
/// FlightRecorder constructed, so aborts dump even without this call.
void InstallFlightDumpHandlers();

/// Writes a dump of every registered recorder to FlightDumpPath() now.
/// `reason` is one of "cs_check", "signal", "sigusr1", "request";
/// `detail` is free-form. Async-signal-safe. Returns true on success.
bool WriteFlightDump(const char* reason, const char* detail);

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_FLIGHT_RECORDER_H_
