#ifndef CTRLSHED_TELEMETRY_SSE_SINK_H_
#define CTRLSHED_TELEMETRY_SSE_SINK_H_

#include "telemetry/server.h"
#include "telemetry/timeline.h"

namespace ctrlshed {

/// TimelineSink that forwards each period row to the telemetry server's
/// /timeline subscribers. Serializes with the same TimelineRowJson the
/// JSONL file sink uses, so the live stream is byte-identical to
/// timeline.jsonl on disk.
class SseTimelineSink : public TimelineSink {
 public:
  explicit SseTimelineSink(TelemetryServer* server) : server_(server) {}

  void Publish(const PeriodRecord& row) override {
    server_->PublishTimelineRow(TimelineRowJson(row));
  }

 private:
  TelemetryServer* server_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_SSE_SINK_H_
