#ifndef CTRLSHED_TELEMETRY_TELEMETRY_H_
#define CTRLSHED_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "telemetry/metrics_registry.h"
#include "telemetry/tracer.h"

namespace ctrlshed {

/// What to collect and where to put it. An empty `dir` disables telemetry
/// entirely: Telemetry::Open returns null and every instrumentation site
/// degrades to a single null-pointer branch.
struct TelemetryOptions {
  std::string dir;      ///< Output directory; created if missing.
  bool trace = true;    ///< Collect spans into <dir>/trace.json.
  /// Wall seconds between metrics.jsonl snapshots (and trace-ring drains).
  double export_period_wall = 0.25;
  /// Per-thread trace ring capacity, in events.
  size_t trace_buffer_capacity = 1 << 14;
};

/// One telemetry session: a Tracer, a MetricsRegistry, and a background
/// exporter thread that every `export_period_wall` seconds appends a
/// registry snapshot to <dir>/metrics.jsonl and drains the trace rings.
/// Stop() (idempotent, also run by the destructor) takes a final snapshot
/// and serializes the trace to <dir>/trace.json.
///
/// Thread-safety: RegisterThread/metrics() may be called from any thread;
/// each TraceBuffer is single-producer as documented on the tracer.
class Telemetry {
 public:
  /// Creates the directory and starts the exporter. Returns null when
  /// `options.dir` is empty (telemetry off). Aborts if the directory
  /// cannot be created.
  static std::unique_ptr<Telemetry> Open(const TelemetryOptions& options);

  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Registers the calling thread for tracing; null when tracing is off —
  /// callers keep the pointer and pass it to ScopedSpan unconditionally.
  TraceBuffer* RegisterThread(const std::string& name);

  MetricsRegistry* metrics() { return &metrics_; }
  Tracer* tracer() { return tracer_.get(); }  ///< Null when trace is off.

  /// Joins the exporter, flushes metrics.jsonl, writes trace.json.
  void Stop();

  const std::string& dir() const { return options_.dir; }
  std::string trace_path() const;
  std::string metrics_path() const;

  /// Valid after Stop(): total span/instant events captured and dropped.
  uint64_t trace_events() const;
  uint64_t trace_dropped() const;

 private:
  explicit Telemetry(TelemetryOptions options);

  void ExportLoop();
  void FlushOnce();

  TelemetryOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<Tracer> tracer_;

  std::ofstream metrics_out_;
  std::chrono::steady_clock::time_point start_wall_;
  std::atomic<bool> stop_{false};
  std::thread exporter_;
  bool stopped_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_TELEMETRY_H_
