#ifndef CTRLSHED_TELEMETRY_TELEMETRY_H_
#define CTRLSHED_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "metrics/recorder.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/server.h"
#include "telemetry/timeline.h"
#include "telemetry/tracer.h"

namespace ctrlshed {

class SseTimelineSink;

/// What to collect and where to put it. With an empty `dir` AND a negative
/// `server_port`, telemetry is off entirely: Telemetry::Open returns null
/// and every instrumentation site degrades to a single null-pointer
/// branch. An empty `dir` with a server port runs socket-only (no files).
struct TelemetryOptions {
  std::string dir;      ///< Output directory; created if missing.
  bool trace = true;    ///< Collect spans into <dir>/trace.json.
  /// Wall seconds between metrics.jsonl snapshots (and trace-ring drains).
  double export_period_wall = 0.25;
  /// Per-thread trace ring capacity, in events.
  size_t trace_buffer_capacity = 1 << 14;

  /// Port for the live HTTP/SSE server: negative disables it, 0 picks an
  /// ephemeral port (observe via on_server_start / server()).
  int server_port = -1;
  /// IPv4 address the server binds. Non-loopback requires
  /// `server_auth_token` (enforced at startup).
  std::string server_bind_address = "127.0.0.1";
  /// Bearer token gating every server request when non-empty.
  std::string server_auth_token;
  /// Per-SSE-client pending-write cap; rows beyond it are dropped for
  /// that client and counted.
  size_t server_client_buffer_bytes = 256 * 1024;
  /// Timeline rows replayed to subscribers that connect mid-run.
  size_t server_history_rows = 4096;
  /// When > 0, SO_SNDBUF for accepted sockets (tests shrink it).
  int server_sndbuf_bytes = 0;
  /// Called once with the bound port after the server starts.
  std::function<void(int)> on_server_start;
};

/// One telemetry session: a Tracer, a MetricsRegistry, an optional live
/// TelemetryServer, and a background exporter thread that every
/// `export_period_wall` seconds appends a registry snapshot to
/// <dir>/metrics.jsonl and drains the trace rings. Stop() (idempotent,
/// also run by the destructor) takes a final snapshot, serializes the
/// trace to <dir>/trace.json, and shuts the server down.
///
/// The control-loop timeline flows through PublishTimelineRow: one call
/// per finished period fans out to every registered TimelineSink — the
/// streaming file sink (timeline.csv / timeline.jsonl, flushed per row)
/// and the SSE sink feeding GET /timeline. One serializer, so the live
/// stream and the files carry identical rows.
///
/// Thread-safety: RegisterThread/metrics() may be called from any thread;
/// each TraceBuffer is single-producer as documented on the tracer;
/// PublishTimelineRow must come from a single thread (the control loop).
class Telemetry {
 public:
  /// Creates the directory (when set) and starts the exporter and server.
  /// Returns null when both `dir` is empty and `server_port` is negative
  /// (telemetry off). Aborts if the directory cannot be created or the
  /// port cannot be bound.
  static std::unique_ptr<Telemetry> Open(const TelemetryOptions& options);

  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Registers the calling thread for tracing; null when tracing is off —
  /// callers keep the pointer and pass it to ScopedSpan unconditionally.
  TraceBuffer* RegisterThread(const std::string& name);

  MetricsRegistry* metrics() { return &metrics_; }
  Tracer* tracer() { return tracer_.get(); }  ///< Null when trace is off.
  TelemetryServer* server() { return server_.get(); }  ///< Null when off.

  /// Publishes one finished control period to every timeline sink (files
  /// and SSE subscribers). Control thread only.
  void PublishTimelineRow(const PeriodRecord& row);

  /// Rows published through PublishTimelineRow so far.
  uint64_t timeline_rows() const {
    return timeline_rows_.load(std::memory_order_relaxed);
  }

  /// Supplies the "app" JSON value of the server's GET /status (run
  /// config, shard summaries, …). The callback runs on the server thread;
  /// it must be thread-safe and non-blocking. No-op without a server.
  void SetStatusSource(std::function<std::string()> app_status);

  /// Joins the exporter, flushes metrics.jsonl, writes trace.json, stops
  /// the server (draining connected clients briefly).
  void Stop();

  const std::string& dir() const { return options_.dir; }
  std::string trace_path() const;
  std::string metrics_path() const;

  /// Valid after Stop(): total span/instant events captured and dropped.
  uint64_t trace_events() const;
  uint64_t trace_dropped() const;

  /// Live-feed health (0 when no server is running).
  uint64_t sse_rows_published() const;
  uint64_t sse_rows_dropped() const;
  uint64_t sse_clients_accepted() const;

 private:
  explicit Telemetry(TelemetryOptions options);

  void ExportLoop();
  void FlushOnce();

  TelemetryOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<TelemetryServer> server_;
  std::unique_ptr<FileTimelineSink> file_sink_;
  std::unique_ptr<SseTimelineSink> sse_sink_;
  std::vector<TimelineSink*> sinks_;
  std::atomic<uint64_t> timeline_rows_{0};
  std::function<std::string()> app_status_;

  std::ofstream metrics_out_;
  // Self-observability: the telemetry system's own loss counters, mirrored
  // into the registry each flush so /metrics reports observability gaps
  // (dropped spans, failed exports) instead of only the end-of-run summary.
  Counter* trace_events_counter_ = nullptr;
  Counter* trace_dropped_counter_ = nullptr;
  Counter* export_failures_counter_ = nullptr;
  std::chrono::steady_clock::time_point start_wall_;
  std::atomic<bool> stop_{false};
  std::thread exporter_;
  bool stopped_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_TELEMETRY_H_
