#include "telemetry/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ctrlshed {

namespace {

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void AppendDoubleOrNull(std::string& out, double v) {
  if (v == v) {
    AppendDouble(out, v);
  } else {
    out += "null";
  }
}

void AppendStringList(std::string& out, const std::vector<std::string>& xs) {
  out += '[';
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += xs[i];  // Reason slugs are fixed identifiers; nothing to escape.
    out += '"';
  }
  out += ']';
}

}  // namespace

const char* HealthVerdictName(HealthVerdict v) {
  switch (v) {
    case HealthVerdict::kOk:
      return "ok";
    case HealthVerdict::kDegraded:
      return "degraded";
    case HealthVerdict::kCritical:
      return "critical";
  }
  return "?";
}

std::string HealthReport::ToJson() const {
  std::string out = "{\"verdict\":\"";
  out += HealthVerdictName(verdict);
  out += "\",\"reasons\":";
  AppendStringList(out, reasons);
  out += ",\"warnings\":";
  AppendStringList(out, warnings);
  out += ",\"periods\":";
  out += std::to_string(periods);
  out += ",\"metrics\":{\"tracking_rms\":";
  AppendDouble(out, tracking_rms);
  out += ",\"alpha_sat_frac\":";
  AppendDouble(out, alpha_sat_frac);
  out += ",\"oscillation\":";
  AppendDouble(out, oscillation);
  out += ",\"stale_nodes\":";
  out += std::to_string(stale_nodes);
  out += ",\"known_nodes\":";
  out += std::to_string(known_nodes);
  out += ",\"trace_loss\":";
  AppendDouble(out, trace_loss);
  out += ",\"sse_loss\":";
  AppendDouble(out, sse_loss);
  out += ",\"h_hat\":";
  AppendDoubleOrNull(out, h_hat);
  out += ",\"h_configured\":";
  AppendDoubleOrNull(out, h_configured);
  out += "}}";
  return out;
}

int HealthReport::HttpStatus() const {
  return verdict == HealthVerdict::kCritical ? 503 : 200;
}

std::string HealthReport::Summary() const {
  std::string out = HealthVerdictName(verdict);
  if (!reasons.empty()) {
    out += " [";
    for (size_t i = 0; i < reasons.size(); ++i) {
      if (i > 0) out += ' ';
      out += reasons[i];
    }
    out += ']';
  }
  out += " (tracking_rms ";
  AppendDouble(out, tracking_rms);
  out += ", alpha_sat ";
  AppendDouble(out, alpha_sat_frac);
  out += ", oscillation ";
  AppendDouble(out, oscillation);
  if (h_hat == h_hat) {
    out += ", h_hat ";
    AppendDouble(out, h_hat);
    if (h_configured == h_configured) {
      out += " vs H ";
      AppendDouble(out, h_configured);
    }
  }
  if (known_nodes > 0) {
    out += ", stale ";
    out += std::to_string(stale_nodes);
    out += '/';
    out += std::to_string(known_nodes);
  }
  out += ')';
  return out;
}

HealthMonitor::HealthMonitor(HealthOptions opts) : opts_(opts) {
  if (opts_.window < 2) opts_.window = 2;
  alpha_.assign(opts_.window, 0.0);
  err_rel_.assign(opts_.window, std::numeric_limits<double>::quiet_NaN());
  u_.assign(opts_.window, 0.0);
  fin_.assign(opts_.window, 0.0);
}

void HealthMonitor::ObservePeriod(const PeriodRecord& row) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t i = periods_ % opts_.window;
  alpha_[i] = row.alpha;
  // Tracking error only means something while the actuator is engaged:
  // an unloaded loop correctly sits far below the setpoint (a shedder
  // cannot create delay), so those periods carry no error signal.
  const bool shedding = row.alpha > 0.05 || row.queue_shed > 0.0;
  err_rel_[i] = shedding && row.m.target_delay > 0.0
                    ? std::abs(row.m.target_delay - row.m.y_hat) /
                          row.m.target_delay
                    : std::numeric_limits<double>::quiet_NaN();
  u_[i] = row.v - row.m.fout;
  fin_[i] = row.m.fin;
  if (row.h_hat == row.h_hat) h_hat_ = row.h_hat;
  ++periods_;
}

void HealthMonitor::SetStaleNodes(uint64_t stale, uint64_t known) {
  std::lock_guard<std::mutex> lock(mu_);
  stale_nodes_ = stale;
  known_nodes_ = known;
}

void HealthMonitor::SetSelfLoss(uint64_t trace_events, uint64_t trace_dropped,
                                uint64_t sse_published,
                                uint64_t sse_dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t trace_total = trace_events + trace_dropped;
  trace_loss_ = trace_total > 0 ? static_cast<double>(trace_dropped) /
                                      static_cast<double>(trace_total)
                                : 0.0;
  const uint64_t sse_total = sse_published + sse_dropped;
  sse_loss_ = sse_total > 0 ? static_cast<double>(sse_dropped) /
                                  static_cast<double>(sse_total)
                            : 0.0;
}

void HealthMonitor::SetHeadroom(double configured, double measured) {
  std::lock_guard<std::mutex> lock(mu_);
  h_configured_ = configured;
  if (measured == measured) h_hat_ = measured;
}

HealthReport HealthMonitor::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthReport r;
  r.periods = periods_;
  r.stale_nodes = stale_nodes_;
  r.known_nodes = known_nodes_;
  r.trace_loss = trace_loss_;
  r.sse_loss = sse_loss_;
  r.h_hat = h_hat_;
  r.h_configured = h_configured_;

  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(periods_, opts_.window));
  size_t saturated = 0;
  double err_sq_sum = 0.0;
  size_t err_n = 0;
  for (size_t i = 0; i < n; ++i) {
    if (alpha_[i] >= opts_.alpha_saturation_level) ++saturated;
    if (err_rel_[i] == err_rel_[i]) {
      err_sq_sum += err_rel_[i] * err_rel_[i];
      ++err_n;
    }
  }
  r.alpha_sat_frac = n > 0 ? static_cast<double>(saturated) / n : 0.0;
  r.tracking_rms = err_n > 0 ? std::sqrt(err_sq_sum / err_n) : 0.0;

  // Oscillation: sign flips of u between consecutive periods, counted
  // only when both sides clear the noise floor — a converged loop
  // hovers at u ~= 0 and flips constantly in the noise, which is health,
  // not oscillation.
  size_t flips = 0;
  size_t pairs = 0;
  if (n >= 2) {
    // Walk the window in arrival order: oldest entry first.
    const uint64_t start = periods_ - n;
    for (size_t j = 1; j < n; ++j) {
      const size_t prev = (start + j - 1) % opts_.window;
      const size_t cur = (start + j) % opts_.window;
      const double floor_prev =
          opts_.u_noise_floor_frac * std::max(fin_[prev], 1.0);
      const double floor_cur =
          opts_.u_noise_floor_frac * std::max(fin_[cur], 1.0);
      ++pairs;
      if (std::abs(u_[prev]) >= floor_prev &&
          std::abs(u_[cur]) >= floor_cur &&
          ((u_[prev] > 0.0) != (u_[cur] > 0.0))) {
        ++flips;
      }
    }
  }
  r.oscillation = pairs > 0 ? static_cast<double>(flips) / pairs : 0.0;

  // Reasons (degrade) and warnings (inform). Below min_periods only
  // stale_node counts — everything else is warmup noise.
  const bool warmed = periods_ >= opts_.min_periods;
  if (stale_nodes_ > 0) r.reasons.emplace_back("stale_node");
  if (warmed) {
    if (r.alpha_sat_frac >= opts_.alpha_saturated_frac) {
      r.reasons.emplace_back("alpha_saturated");
    }
    if (err_n >= opts_.min_periods / 2 &&
        r.tracking_rms >= opts_.tracking_rms_degraded) {
      r.reasons.emplace_back("tracking_error");
    }
    if (r.oscillation >= opts_.oscillation_degraded) {
      r.reasons.emplace_back("oscillating");
    }
    if (trace_loss_ >= opts_.self_loss_degraded ||
        sse_loss_ >= opts_.self_loss_degraded) {
      r.reasons.emplace_back("telemetry_loss");
    }
  }
  if (h_hat_ == h_hat_ && h_configured_ == h_configured_ &&
      h_configured_ > 0.0 &&
      std::abs(h_hat_ - h_configured_) / h_configured_ >
          opts_.headroom_drift_warn) {
    r.warnings.emplace_back("headroom_drift");
  }

  if (!r.reasons.empty()) r.verdict = HealthVerdict::kDegraded;
  const bool saturated_and_lost =
      r.alpha_sat_frac >= opts_.alpha_saturated_frac && warmed &&
      err_n >= opts_.min_periods / 2 &&
      r.tracking_rms >= opts_.tracking_rms_critical;
  const bool all_nodes_stale =
      known_nodes_ > 0 && stale_nodes_ == known_nodes_;
  if (saturated_and_lost || all_nodes_stale) {
    r.verdict = HealthVerdict::kCritical;
  }
  return r;
}

void HealthGauges::Init(MetricsRegistry* registry) {
  verdict_ = registry->GetGauge("ctrlshed.health.verdict");
  tracking_rms_ = registry->GetGauge("ctrlshed.health.tracking_rms");
  alpha_sat_frac_ = registry->GetGauge("ctrlshed.health.alpha_sat_frac");
  oscillation_ = registry->GetGauge("ctrlshed.health.oscillation");
  stale_nodes_ = registry->GetGauge("ctrlshed.health.stale_nodes");
  h_hat_ = registry->GetGauge("ctrlshed.health.h_hat");
}

void HealthGauges::Publish(const HealthReport& r) {
  if (verdict_ == nullptr) return;
  verdict_->Set(static_cast<double>(r.verdict));
  tracking_rms_->Set(r.tracking_rms);
  alpha_sat_frac_->Set(r.alpha_sat_frac);
  oscillation_->Set(r.oscillation);
  stale_nodes_->Set(static_cast<double>(r.stale_nodes));
  if (r.h_hat == r.h_hat) h_hat_->Set(r.h_hat);
}

}  // namespace ctrlshed
