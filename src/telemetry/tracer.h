#ifndef CTRLSHED_TELEMETRY_TRACER_H_
#define CTRLSHED_TELEMETRY_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "rt/spsc_ring.h"

namespace ctrlshed {

/// One tracer record. POD so the SPSC ring can copy it; `name` must point
/// at a string with static storage duration (instrumentation sites use
/// literals), which keeps the hot-path emit allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_us = 0;   ///< Start time, microseconds since the tracer epoch.
  int64_t dur_us = 0;  ///< Span duration; < 0 marks an instant event.
  /// Optional single integer argument (rendered as `"args":{arg_name:arg}`)
  /// — enough to stamp a correlation id such as the controller period seq
  /// onto a span without heap traffic. Same lifetime contract as `name`.
  const char* arg_name = nullptr;
  int64_t arg = 0;
};

class Tracer;

/// The per-thread half of the tracer: a bounded SPSC ring the owning
/// thread pushes into and the exporter thread drains. Exactly one thread
/// may call Emit/Instant (the registrant) and exactly one may call Drain
/// (the exporter) — the same discipline as the ingress rings in rt/.
/// A full ring drops the event and counts it; tracing never blocks the
/// traced thread.
class TraceBuffer {
 public:
  TraceBuffer(Tracer* tracer, std::string thread_name, int tid,
              size_t capacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Producer side (owner thread only).
  void Emit(const TraceEvent& ev) {
    if (!ring_.TryPush(ev)) dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  void Instant(const char* name);
  void Instant(const char* name, const char* arg_name, int64_t arg);

  /// Microseconds since the owning tracer's epoch (any thread).
  int64_t NowUs() const;

  /// Consumer side (exporter thread only): moves everything available into
  /// the buffer's collected store. Returns the number of events moved.
  size_t Drain();

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const std::string& thread_name() const { return thread_name_; }
  int tid() const { return tid_; }
  const std::vector<TraceEvent>& collected() const { return collected_; }

 private:
  Tracer* tracer_;
  std::string thread_name_;
  int tid_;
  SpscRing<TraceEvent> ring_;
  std::atomic<uint64_t> dropped_{0};
  std::vector<TraceEvent> collected_;  ///< Exporter-thread-owned.
};

/// RAII span: records a complete ('X') trace event covering its lifetime.
/// With a null buffer (telemetry disabled) construction and destruction
/// are each a single branch — the instrumentation is free when off.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer* buf, const char* name) : buf_(buf), name_(name) {
    if (buf_ != nullptr) start_us_ = buf_->NowUs();
  }
  ScopedSpan(TraceBuffer* buf, const char* name, const char* arg_name,
             int64_t arg)
      : buf_(buf), name_(name), arg_name_(arg_name), arg_(arg) {
    if (buf_ != nullptr) start_us_ = buf_->NowUs();
  }
  ~ScopedSpan() {
    if (buf_ != nullptr) {
      buf_->Emit(
          {name_, start_us_, buf_->NowUs() - start_us_, arg_name_, arg_});
    }
  }

  /// Re-stamps the argument before the span closes (e.g. when the period
  /// seq is only known once the guarded work has run).
  void SetArg(const char* arg_name, int64_t arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buf_;
  const char* name_;
  const char* arg_name_ = nullptr;
  int64_t arg_ = 0;
  int64_t start_us_ = 0;
};

/// Lock-free span/event tracer. Each instrumented thread registers once
/// (mutex-protected, cold) and gets a TraceBuffer it owns as producer; an
/// exporter thread periodically drains every buffer; at shutdown the whole
/// collection serializes to Chrome trace-event JSON ("trace viewer" array
/// format), which Perfetto and chrome://tracing open directly.
class Tracer {
 public:
  /// `buffer_capacity` is the per-thread ring size in events (rounded up
  /// to a power of two by the ring).
  explicit Tracer(size_t buffer_capacity = 1 << 14);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers the calling thread and returns its buffer. The pointer is
  /// stable for the tracer's lifetime. Call once per thread.
  TraceBuffer* RegisterThread(const std::string& name);

  /// Interns a dynamically built span name (e.g. "op:join" from operator
  /// names owned by a query network that may die before the tracer): the
  /// returned pointer is stable for the tracer's lifetime and safe to use
  /// as TraceEvent::name. Mutex-protected and deduplicating — call once at
  /// setup, never per event.
  const char* Intern(const std::string& name);

  /// Microseconds since construction (monotonic clock; any thread).
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Drains every thread buffer into its collected store. Exporter thread
  /// (or any single coordinating thread) only.
  void Drain();

  /// Total events collected so far and total drops across all threads.
  uint64_t collected_events() const;
  uint64_t dropped_events() const;

  /// Drains, then writes the full Chrome trace-event JSON array. Call
  /// after the instrumented threads have quiesced (the writer drains each
  /// ring from the exporter role while writing).
  void WriteChromeTrace(std::ostream& out);

 private:
  std::chrono::steady_clock::time_point epoch_;
  size_t buffer_capacity_;

  mutable std::mutex mu_;  ///< Guards registration vs iteration.
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::map<std::string, std::unique_ptr<std::string>> interned_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_TRACER_H_
