#ifndef CTRLSHED_TELEMETRY_TRACE_MERGE_H_
#define CTRLSHED_TELEMETRY_TRACE_MERGE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ctrlshed {

/// Joins N per-process Chrome trace-event JSON files (each written by
/// Tracer::WriteChromeTrace) into one timeline Perfetto/chrome://tracing
/// opens directly:
///  - input i becomes pid i+1 with a process_name metadata record, so
///    every process gets its own track group;
///  - a `clock_sync` instant event (emitted by a cluster node after the
///    HELLO/HelloAck round trip, args {"offset_us":N}) shifts that whole
///    file onto the controller's trace timebase — offset_us is defined as
///    controller_clock - node_clock at the same wall instant;
///  - `period` span arguments are collected per file so callers can assert
///    the cross-process correlation actually happened: a period id that
///    appears in every input proves one controller decision was traced
///    end to end (node report -> controller tick -> node apply).

struct TraceMergeResult {
  size_t files = 0;
  size_t events = 0;  ///< Total non-metadata events written.
  std::vector<std::string> labels;        ///< Per input, the track name.
  std::vector<int64_t> offsets_us;        ///< Applied clock shift per input.
  std::vector<size_t> events_per_file;
  /// Period ids present in EVERY input (empty when any input lacks period
  /// spans — e.g. merging unrelated traces).
  std::vector<int64_t> common_periods;
  std::string error;  ///< Set when a Merge* call returns false.
};

/// Core, string-in/stream-out (testable without touching disk). Each input
/// is (label, trace JSON). Returns false on malformed JSON; `out` is only
/// written on success.
bool MergeTraceJson(
    const std::vector<std::pair<std::string, std::string>>& inputs,
    std::ostream& out, TraceMergeResult* result);

/// File wrapper: reads every path, labels each track from the path (the
/// parent directory name for the conventional <dir>/trace.json layout),
/// and writes the merged array to `out_path`.
bool MergeTraceFiles(const std::vector<std::string>& paths,
                     const std::string& out_path, TraceMergeResult* result);

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_TRACE_MERGE_H_
