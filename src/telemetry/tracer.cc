#include "telemetry/tracer.h"

#include <utility>

#include "common/macros.h"

namespace ctrlshed {

namespace {

// Trace names are instrumentation-site literals, but escape defensively so
// the emitted JSON is well-formed for any name.
void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

TraceBuffer::TraceBuffer(Tracer* tracer, std::string thread_name, int tid,
                         size_t capacity)
    : tracer_(tracer),
      thread_name_(std::move(thread_name)),
      tid_(tid),
      ring_(capacity) {}

void TraceBuffer::Instant(const char* name) {
  Emit({name, NowUs(), -1});
}

void TraceBuffer::Instant(const char* name, const char* arg_name,
                          int64_t arg) {
  Emit({name, NowUs(), -1, arg_name, arg});
}

int64_t TraceBuffer::NowUs() const { return tracer_->NowUs(); }

size_t TraceBuffer::Drain() {
  TraceEvent ev;
  size_t n = 0;
  // Bounded like the engine's ring drain: a producer refilling concurrently
  // cannot pin the exporter in this loop.
  for (size_t budget = ring_.capacity(); budget > 0 && ring_.TryPop(&ev);
       --budget) {
    collected_.push_back(ev);
    ++n;
  }
  return n;
}

Tracer::Tracer(size_t buffer_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      buffer_capacity_(buffer_capacity) {
  CS_CHECK_MSG(buffer_capacity_ >= 2, "trace buffer capacity too small");
}

TraceBuffer* Tracer::RegisterThread(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const int tid = static_cast<int>(buffers_.size()) + 1;
  buffers_.push_back(
      std::make_unique<TraceBuffer>(this, name, tid, buffer_capacity_));
  return buffers_.back().get();
}

const char* Tracer::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = interned_[name];
  if (!slot) slot = std::make_unique<std::string>(name);
  return slot->c_str();
}

void Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) buf->Drain();
}

uint64_t Tracer::collected_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& buf : buffers_) n += buf->collected().size();
  return n;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& buf : buffers_) n += buf->dropped();
  return n;
}

void Tracer::WriteChromeTrace(std::ostream& out) {
  Drain();
  std::lock_guard<std::mutex> lock(mu_);
  out << "[";
  bool first = true;
  for (const auto& tb : buffers_) {
    // Thread-name metadata event so Perfetto labels the track.
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << tb->tid() << ",\"args\":{\"name\":";
    WriteJsonString(out, tb->thread_name());
    out << "}}";
    for (const TraceEvent& ev : tb->collected()) {
      out << ",\n";
      if (ev.dur_us < 0) {
        out << "{\"name\":";
        WriteJsonString(out, ev.name);
        out << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tb->tid()
            << ",\"ts\":" << ev.ts_us;
      } else {
        out << "{\"name\":";
        WriteJsonString(out, ev.name);
        out << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << tb->tid()
            << ",\"ts\":" << ev.ts_us << ",\"dur\":" << ev.dur_us;
      }
      if (ev.arg_name != nullptr) {
        out << ",\"args\":{";
        WriteJsonString(out, ev.arg_name);
        out << ":" << ev.arg << "}";
      }
      out << "}";
    }
    if (tb->dropped() > 0) {
      out << ",\n{\"name\":\"dropped_events\",\"ph\":\"C\",\"pid\":1,"
          << "\"tid\":" << tb->tid() << ",\"ts\":" << NowUs()
          << ",\"args\":{\"count\":" << tb->dropped() << "}}";
    }
  }
  out << "]\n";
}

}  // namespace ctrlshed
