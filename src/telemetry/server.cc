#include "telemetry/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/build_info.h"
#include "common/macros.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/prom_export.h"

namespace ctrlshed {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

/// Token comparison without a data-dependent early exit: the XOR
/// accumulator touches every byte of the presented token regardless of
/// where the first mismatch sits, so response timing does not narrow the
/// search. Only the (public) token length leaks via the length check.
bool ConstantTimeEquals(const std::string& presented,
                        const std::string& expected) {
  unsigned char acc = presented.size() == expected.size() ? 0 : 1;
  const size_t n = expected.empty() ? 1 : expected.size();
  for (size_t i = 0; i < presented.size(); ++i) {
    acc |= static_cast<unsigned char>(presented[i]) ^
           static_cast<unsigned char>(expected[i % n]);
  }
  return acc == 0;
}

/// Extracts the value of an `Authorization: Bearer <token>` header from
/// the raw request head (request line + headers, CRLF-separated). Header
/// names are case-insensitive per RFC 9110.
std::string BearerToken(const std::string& head) {
  static constexpr char kKey[] = "authorization:";
  constexpr size_t kKeyLen = sizeof(kKey) - 1;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    if (eol - pos > kKeyLen) {
      bool match = true;
      for (size_t i = 0; i < kKeyLen; ++i) {
        if (std::tolower(static_cast<unsigned char>(head[pos + i])) !=
            kKey[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string v = head.substr(pos + kKeyLen, eol - pos - kKeyLen);
        const size_t b = v.find_first_not_of(" \t");
        if (b == std::string::npos) return "";
        v.erase(0, b);
        const std::string scheme = "Bearer ";
        if (v.rfind(scheme, 0) == 0) return v.substr(scheme.size());
        return "";
      }
    }
    if (eol == head.size()) break;
    pos = eol + 2;
  }
  return "";
}

/// Extracts `token=<value>` from the request path's query string (the
/// header-less channel EventSource and the dashboard need).
std::string QueryToken(const std::string& path) {
  const size_t q = path.find('?');
  if (q == std::string::npos) return "";
  size_t pos = q + 1;
  while (pos <= path.size()) {
    size_t amp = path.find('&', pos);
    if (amp == std::string::npos) amp = path.size();
    static constexpr char kKey[] = "token=";
    constexpr size_t kKeyLen = sizeof(kKey) - 1;
    if (amp - pos > kKeyLen && path.compare(pos, kKeyLen, kKey) == 0) {
      return path.substr(pos + kKeyLen, amp - pos - kKeyLen);
    }
    pos = amp + 1;
  }
  return "";
}

double NowWall() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  CS_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  CS_CHECK_MSG(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(F_SETFL, O_NONBLOCK) failed");
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << "\r\nContent-Type: " << content_type
      << "\r\nContent-Length: " << body.size()
      << "\r\nConnection: close\r\n\r\n"
      << body;
  return out.str();
}

// The whole dashboard ships inline so GET / works with zero files on disk:
// three autoscaled strip charts fed by the same SSE stream the tests
// assert on.
constexpr const char kDashboardHtml[] = R"html(<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>ctrlshed live telemetry</title>
<style>
  body { font-family: monospace; background: #111; color: #ddd; margin: 1em; }
  h1 { font-size: 1.1em; }
  .chart { margin-bottom: 1em; }
  canvas { background: #181818; border: 1px solid #333; display: block; }
  .legend { font-size: 0.85em; color: #999; }
  #stat { color: #7a7; }
</style>
</head>
<body>
<h1>ctrlshed control loop <span id="stat">connecting&hellip;</span> &middot; health <span id="health">?</span></h1>
<div class="chart"><div class="legend">delay: <span style="color:#6cf">y_hat</span> vs <span style="color:#fc6">yd (setpoint)</span></div><canvas id="c_y" width="900" height="160"></canvas></div>
<div class="chart"><div class="legend">rates: <span style="color:#6cf">u = v - fout</span>, <span style="color:#fc6">v</span></div><canvas id="c_u" width="900" height="160"></canvas></div>
<div class="chart"><div class="legend">shedding: <span style="color:#6cf">alpha</span>, <span style="color:#fc6">loss</span></div><canvas id="c_a" width="900" height="160"></canvas></div>
<div class="chart" id="fleet" style="display:none"><div class="legend">cluster fleet (from /fleet)</div><table id="fleet_t" style="border-collapse:collapse"></table></div>
<style>
  #fleet_t td, #fleet_t th { border: 1px solid #333; padding: 2px 8px; text-align: right; }
  #fleet_t th { color: #999; font-weight: normal; }
  .fresh { color: #7a7; } .stale { color: #d66; }
</style>
<script>
'use strict';
const WINDOW = 600;
const rows = [];
// On an authenticated bind the token rides the query string — EventSource
// and plain dashboard links cannot set an Authorization header.
const TOKEN = new URLSearchParams(location.search).get('token');
const QS = TOKEN ? ('?token=' + encodeURIComponent(TOKEN)) : '';
function draw(id, series) {
  const cv = document.getElementById(id), g = cv.getContext('2d');
  g.clearRect(0, 0, cv.width, cv.height);
  let lo = Infinity, hi = -Infinity;
  for (const s of series) for (const v of s.data) {
    if (v == null || !isFinite(v)) continue;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (!isFinite(lo)) return;
  if (hi - lo < 1e-12) { hi += 1; lo -= 1; }
  const pad = (hi - lo) * 0.08; lo -= pad; hi += pad;
  g.fillStyle = '#666'; g.font = '10px monospace';
  g.fillText(hi.toPrecision(4), 4, 12);
  g.fillText(lo.toPrecision(4), 4, cv.height - 4);
  for (const s of series) {
    g.strokeStyle = s.color; g.beginPath();
    let pen = false;
    for (let i = 0; i < s.data.length; i++) {
      const v = s.data[i];
      if (v == null || !isFinite(v)) { pen = false; continue; }
      const x = i * cv.width / Math.max(WINDOW - 1, s.data.length - 1);
      const y = cv.height - (v - lo) / (hi - lo) * cv.height;
      if (pen) g.lineTo(x, y); else { g.moveTo(x, y); pen = true; }
    }
    g.stroke();
  }
}
function redraw() {
  const col = (f) => rows.map(f);
  draw('c_y', [{color: '#6cf', data: col(r => r.y_hat)},
               {color: '#fc6', data: col(r => r.yd)}]);
  draw('c_u', [{color: '#6cf', data: col(r => r.u)},
               {color: '#fc6', data: col(r => r.v)}]);
  draw('c_a', [{color: '#6cf', data: col(r => r.alpha)},
               {color: '#fc6', data: col(r => r.loss)}]);
}
const es = new EventSource('/timeline' + QS);
es.onopen = () => { document.getElementById('stat').textContent = 'live'; };
es.onerror = () => { document.getElementById('stat').textContent = 'disconnected'; };
es.onmessage = (ev) => {
  rows.push(JSON.parse(ev.data));
  if (rows.length > WINDOW) rows.shift();
  const last = rows[rows.length - 1];
  document.getElementById('stat').textContent =
      'live · k=' + last.k + ' t=' + last.t.toFixed(2) +
      ' q=' + last.q.toFixed(0) + ' alpha=' + last.alpha.toFixed(3);
  redraw();
};
async function pollFleet() {
  let j = null;
  try {
    const r = await fetch('/fleet' + QS);
    if (!r.ok) return;
    j = await r.json();
  } catch (e) { return; }
  const panel = document.getElementById('fleet');
  if (!j || !j.nodes || !j.nodes.length) { panel.style.display = 'none'; return; }
  panel.style.display = 'block';
  let html = '<tr><th>node</th><th>workers</th><th>fresh</th><th>q</th>' +
             '<th>alpha</th><th>loss</th><th>report age (s)</th></tr>';
  for (const n of j.nodes) {
    html += '<tr><td>' + n.id + '</td><td>' + n.workers + '</td>' +
        '<td class="' + (n.fresh ? 'fresh">yes' : 'stale">no') + '</td>' +
        '<td>' + (n.queue == null ? '-' : n.queue.toFixed(0)) + '</td>' +
        '<td>' + n.alpha.toFixed(3) + '</td>' +
        '<td>' + (n.loss * 100).toFixed(1) + '%</td>' +
        '<td>' + (n.last_report_age_s < 0 ? 'never' : n.last_report_age_s.toFixed(2)) + '</td></tr>';
  }
  document.getElementById('fleet_t').innerHTML = html;
}
setInterval(pollFleet, 2000);
pollFleet();
async function pollHealth() {
  let j = null;
  try {
    const r = await fetch('/health' + QS);
    j = await r.json();
  } catch (e) { return; }
  if (!j || !j.verdict) return;
  const el = document.getElementById('health');
  let text = j.verdict;
  if (j.reasons && j.reasons.length) text += ' [' + j.reasons.join(' ') + ']';
  if (j.warnings && j.warnings.length) text += ' (' + j.warnings.join(' ') + ')';
  el.textContent = text;
  el.className = j.verdict === 'ok' ? 'fresh' : 'stale';
}
setInterval(pollHealth, 2000);
pollHealth();
</script>
</body>
</html>
)html";

}  // namespace

struct TelemetryServer::Client {
  int fd = -1;
  std::string in;
  std::string out;
  bool streaming = false;
  bool close_after_flush = false;
  bool closed = false;
  uint64_t dropped_rows = 0;
};

TelemetryServer::TelemetryServer(MetricsRegistry* registry,
                                 TelemetryServerOptions options)
    : registry_(registry), options_(options) {}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Start() {
  CS_CHECK_MSG(!started_.load(), "TelemetryServer::Start called twice");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  CS_CHECK_MSG(listen_fd_ >= 0, "telemetry server: socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  in_addr bound{};
  CS_CHECK_MSG(
      inet_pton(AF_INET, options_.bind_address.c_str(), &bound) == 1,
      "telemetry server: bind address is not a valid IPv4 address");
  // Refuse to expose the server beyond loopback without authentication —
  // an open /metrics + dashboard on a fleet port is an information leak.
  const bool loopback = (ntohl(bound.s_addr) >> 24) == 127;
  CS_CHECK_MSG(loopback || !options_.auth_token.empty(),
               "telemetry server: non-loopback bind requires an auth token "
               "(set --telemetry-token)");
  addr.sin_addr = bound;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  CS_CHECK_MSG(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
               "telemetry server: cannot bind telemetry address/port");
  CS_CHECK_MSG(listen(listen_fd_, 16) == 0, "telemetry server: listen failed");

  socklen_t len = sizeof(addr);
  CS_CHECK_MSG(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &len) == 0,
               "telemetry server: getsockname failed");
  port_ = ntohs(addr.sin_port);

  SetNonBlocking(listen_fd_);
  CS_CHECK_MSG(pipe(wake_pipe_) == 0, "telemetry server: pipe failed");
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  if (registry_ != nullptr) {
    published_counter_ = registry_->GetCounter("telemetry.sse.rows_published");
    dropped_counter_ = registry_->GetCounter("telemetry.sse.rows_dropped");
  }

  start_wall_ = NowWall();
  started_.store(true);
  thread_ = std::thread([this] { Serve(); });
}

void TelemetryServer::Stop() {
  if (!started_.exchange(false)) return;
  stop_requested_.store(true);
  const char b = 'w';
  [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &b, 1);
  thread_.join();
  stop_requested_.store(false);

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : clients_) {
    if (!c->closed) CloseClient(c.get());
  }
  clients_.clear();
  close(listen_fd_);
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
}

void TelemetryServer::SetStatusCallback(std::function<std::string()> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  status_cb_ = std::move(cb);
}

void TelemetryServer::SetFleetCallback(std::function<std::string()> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  fleet_cb_ = std::move(cb);
}

void TelemetryServer::SetHealthCallback(
    std::function<std::pair<int, std::string>()> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  health_cb_ = std::move(cb);
}

void TelemetryServer::PublishTimelineRow(const std::string& row_json) {
  const std::string frame = "data: " + row_json + "\n\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back(row_json);
    while (history_.size() > options_.history_rows) history_.pop_front();
    for (auto& c : clients_) {
      if (!c->streaming || c->closed) continue;
      if (c->out.size() + frame.size() > options_.client_buffer_bytes) {
        // Never stall the control thread on a stuck socket: the row is
        // gone for this client, and the count makes the gap visible.
        ++c->dropped_rows;
        rows_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (dropped_counter_ != nullptr) dropped_counter_->Add();
      } else {
        c->out += frame;
      }
    }
  }
  rows_published_.fetch_add(1, std::memory_order_relaxed);
  if (published_counter_ != nullptr) published_counter_->Add();
  const char b = 'w';
  [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &b, 1);
}

// Requires mu_ held: the only caller is HandleRequest, which the serve
// loop invokes under the lock (std::mutex is non-recursive, so locking
// here again would deadlock).
std::string TelemetryServer::StatusJson() const {
  size_t total_clients = 0;
  size_t streams = 0;
  for (const auto& c : clients_) {
    if (c->closed) continue;
    ++total_clients;
    if (c->streaming) ++streams;
  }
  const std::function<std::string()>& cb = status_cb_;
  std::ostringstream out;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", NowWall() - start_wall_);
  out << "{\"uptime_s\":" << buf << ",\"port\":" << port_
      << ",\"build\":" << BuildInfoJson() << ",\"sse\":{"
      << "\"clients\":" << total_clients << ",\"streams\":" << streams
      << ",\"clients_accepted\":" << clients_accepted()
      << ",\"rows_published\":" << rows_published()
      << ",\"rows_dropped\":" << rows_dropped() << "},\"app\":"
      << (cb ? cb() : std::string("null")) << "}";
  return out.str();
}

void TelemetryServer::HandleRequest(Client* c, const std::string& method,
                                    const std::string& path) {
  const std::string route = path.substr(0, path.find('?'));
  if (method == "POST" && route == "/debug/dump") {
    // On-demand post-mortem: write the flight dump where a crash would,
    // then return the same JSON. The file read happens on the server
    // thread — acceptable for a one-shot debugging endpoint.
    std::string body;
    if (WriteFlightDump("request", "POST /debug/dump")) {
      std::ifstream in(FlightDumpPath(), std::ios::binary);
      std::ostringstream tmp;
      tmp << in.rdbuf();
      body = tmp.str();
    }
    if (body.empty()) {
      c->out += HttpResponse("503 Service Unavailable", "text/plain",
                             "flight dump failed\n");
    } else {
      c->out += HttpResponse("200 OK", "application/json", body);
    }
    c->close_after_flush = true;
    return;
  }
  if (method != "GET") {
    c->out += HttpResponse("405 Method Not Allowed", "text/plain",
                           "only GET is supported (POST only on "
                           "/debug/dump)\n");
    c->close_after_flush = true;
    return;
  }
  if (route == "/") {
    c->out += HttpResponse("200 OK", "text/html; charset=utf-8",
                           kDashboardHtml);
    c->close_after_flush = true;
  } else if (route == "/metrics") {
    std::ostringstream body;
    if (registry_ != nullptr) {
      WritePrometheusText(registry_->Snapshot(), body);
    }
    c->out += HttpResponse(
        "200 OK", "text/plain; version=0.0.4; charset=utf-8", body.str());
    c->close_after_flush = true;
  } else if (route == "/status") {
    c->out += HttpResponse("200 OK", "application/json", StatusJson());
    c->close_after_flush = true;
  } else if (route == "/fleet") {
    const std::function<std::string()>& cb = fleet_cb_;
    c->out += HttpResponse("200 OK", "application/json",
                           cb ? cb() : std::string("{\"nodes\":[]}"));
    c->close_after_flush = true;
  } else if (route == "/health") {
    const std::function<std::pair<int, std::string>()>& cb = health_cb_;
    if (cb) {
      const std::pair<int, std::string> r = cb();
      c->out += HttpResponse(
          r.first == 503 ? "503 Service Unavailable" : "200 OK",
          "application/json", r.second);
    } else {
      c->out += HttpResponse(
          "200 OK", "application/json",
          "{\"verdict\":\"unknown\",\"reasons\":[],\"warnings\":[]}");
    }
    c->close_after_flush = true;
  } else if (route == "/timeline") {
    c->out +=
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
        "Cache-Control: no-cache\r\nConnection: keep-alive\r\n\r\n";
    // Replay before going live so a late subscriber sees the whole run;
    // caller already holds no ordering guarantee beyond row order, which
    // the single publisher thread preserves.
    for (const std::string& row : history_) {
      c->out += "data: " + row + "\n\n";
    }
    c->streaming = true;
  } else {
    c->out += HttpResponse("404 Not Found", "text/plain",
                           "unknown path; try /, /metrics, /status, "
                           "/fleet, /health, /timeline\n");
    c->close_after_flush = true;
  }
}

void TelemetryServer::HandleReadable(Client* c) {
  char buf[4096];
  while (true) {
    const ssize_t n = recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      // A streaming client has nothing more to say; discard its bytes but
      // keep reading so we notice the hangup.
      if (!c->streaming) c->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      CloseClient(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseClient(c);
    return;
  }
  if (c->streaming || c->close_after_flush) return;
  if (c->in.size() > kMaxRequestBytes) {
    c->out += HttpResponse("431 Request Header Fields Too Large", "text/plain",
                           "request too large\n");
    c->close_after_flush = true;
    return;
  }
  const size_t end = c->in.find("\r\n\r\n");
  if (end == std::string::npos) return;
  const std::string head = c->in.substr(0, end);
  const size_t line_end = c->in.find("\r\n");
  std::istringstream req_line(c->in.substr(0, line_end));
  std::string method, path;
  req_line >> method >> path;
  c->in.clear();
  if (method.empty() || path.empty()) {
    c->out += HttpResponse("400 Bad Request", "text/plain", "bad request\n");
    c->close_after_flush = true;
    return;
  }
  if (!options_.auth_token.empty()) {
    // Evaluate both channels unconditionally so the comparison count does
    // not depend on which (if either) carried the right token.
    const bool header_ok =
        ConstantTimeEquals(BearerToken(head), options_.auth_token);
    const bool query_ok =
        ConstantTimeEquals(QueryToken(path), options_.auth_token);
    if (!header_ok && !query_ok) {
      c->out += HttpResponse("401 Unauthorized", "text/plain",
                             "missing or invalid bearer token\n");
      c->close_after_flush = true;
      return;
    }
  }
  HandleRequest(c, method, path);
}

void TelemetryServer::FlushClient(Client* c) {
  while (!c->out.empty()) {
    const ssize_t n =
        send(c->fd, c->out.data(), c->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseClient(c);
    return;
  }
  if (c->close_after_flush) CloseClient(c);
}

void TelemetryServer::CloseClient(Client* c) {
  if (c->closed) return;
  close(c->fd);
  c->fd = -1;
  c->closed = true;
}

void TelemetryServer::AcceptNew() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    SetNonBlocking(fd);
    if (options_.sndbuf_bytes > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                 sizeof(options_.sndbuf_bytes));
    }
    std::lock_guard<std::mutex> lock(mu_);
    size_t active = 0;
    for (const auto& c : clients_) {
      if (!c->closed) ++active;
    }
    if (active >= static_cast<size_t>(options_.max_clients)) {
      close(fd);
      continue;
    }
    clients_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto client = std::make_unique<Client>();
    client->fd = fd;
    clients_.push_back(std::move(client));
  }
}

void TelemetryServer::Serve() {
  bool draining = false;
  double drain_deadline = 0.0;
  while (true) {
    if (stop_requested_.load() && !draining) {
      draining = true;
      drain_deadline = NowWall() + options_.drain_timeout_wall;
    }

    std::vector<pollfd> fds;
    std::vector<Client*> fd_client;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (!draining) fds.push_back({listen_fd_, POLLIN, 0});
    bool pending_out = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& c : clients_) {
        if (c->closed) continue;
        short events = POLLIN;
        if (!c->out.empty()) {
          events |= POLLOUT;
          pending_out = true;
        }
        fds.push_back({c->fd, events, 0});
        fd_client.push_back(c.get());
      }
    }

    if (draining && (!pending_out || NowWall() >= drain_deadline)) break;

    poll(fds.data(), fds.size(), draining ? 20 : 500);

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    const size_t client_base = draining ? 1 : 2;
    if (!draining && (fds[1].revents & POLLIN)) AcceptNew();

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < fd_client.size(); ++i) {
        Client* c = fd_client[i];
        const short re = fds[client_base + i].revents;
        if (c->closed) continue;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          CloseClient(c);
          continue;
        }
        if (re & POLLIN) HandleReadable(c);
        if (!c->closed && !c->out.empty()) FlushClient(c);
      }
      clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                    [](const std::unique_ptr<Client>& c) {
                                      return c->closed;
                                    }),
                     clients_.end());
    }
  }
}

}  // namespace ctrlshed
