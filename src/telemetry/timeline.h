#ifndef CTRLSHED_TELEMETRY_TIMELINE_H_
#define CTRLSHED_TELEMETRY_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

#include "metrics/recorder.h"

namespace ctrlshed {

/// Serializes one period row as a single-line JSON object (no trailing
/// newline): {"k":…,"t":…,"yd":…,…,"lateness":…[,"shards":N,"shard_q":[…]]}.
/// This is THE timeline wire format — the JSONL file writer and the SSE
/// stream both call it, which is what makes the live feed byte-identical
/// to timeline.jsonl on disk.
std::string TimelineRowJson(const PeriodRecord& row);

/// A per-period consumer of the control-loop timeline. Both runtimes push
/// each finished PeriodRecord through every registered sink, so files and
/// sockets see the same rows through one path. Publish is called from the
/// single control thread only; implementations need not be thread-safe
/// against concurrent Publish calls but must not block it for long.
class TimelineSink {
 public:
  virtual ~TimelineSink() = default;
  virtual void Publish(const PeriodRecord& row) = 0;
};

/// Streams the timeline into `dir` as both timeline.csv (header written at
/// construction) and timeline.jsonl, flushing after every row so the files
/// are complete up to the last finished period even if the process is
/// interrupted. Aborts if the files cannot be created (the directory must
/// already exist — Telemetry::Open creates it).
class FileTimelineSink : public TimelineSink {
 public:
  explicit FileTimelineSink(const std::string& dir);

  void Publish(const PeriodRecord& row) override;

  uint64_t rows_written() const { return rows_written_; }

 private:
  std::ofstream csv_;
  std::ofstream jsonl_;
  uint64_t rows_written_ = 0;
};

/// JSONL twin of Recorder::WriteCsv: one JSON object per control period
/// with the same fields (k, t, yd, q, y_hat, e, u, v, alpha, loss,
/// lateness, …). `y_meas` is null for periods with no departures.
void WriteTimelineJsonl(const Recorder& recorder, std::ostream& out);

/// Writes the control-loop timeline into `dir` as both timeline.csv
/// (Recorder::WriteCsv) and timeline.jsonl. Returns the number of period
/// rows written. Aborts if the files cannot be created (the directory
/// must already exist — Telemetry::Open creates it). The runtimes stream
/// through FileTimelineSink instead; this one-shot form serves tests and
/// offline re-export.
size_t WriteControlTimeline(const Recorder& recorder, const std::string& dir);

/// Paths the timeline export uses inside `dir`.
std::string TimelineCsvPath(const std::string& dir);
std::string TimelineJsonlPath(const std::string& dir);

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_TIMELINE_H_
