#ifndef CTRLSHED_TELEMETRY_TIMELINE_H_
#define CTRLSHED_TELEMETRY_TIMELINE_H_

#include <cstddef>
#include <ostream>
#include <string>

#include "metrics/recorder.h"

namespace ctrlshed {

/// JSONL twin of Recorder::WriteCsv: one JSON object per control period
/// with the same fields (k, t, yd, q, y_hat, e, u, v, alpha, loss,
/// lateness, …). `y_meas` is null for periods with no departures.
void WriteTimelineJsonl(const Recorder& recorder, std::ostream& out);

/// Writes the control-loop timeline into `dir` as both timeline.csv
/// (Recorder::WriteCsv) and timeline.jsonl. Returns the number of period
/// rows written. Aborts if the files cannot be created (the directory
/// must already exist — Telemetry::Open creates it).
size_t WriteControlTimeline(const Recorder& recorder, const std::string& dir);

/// Paths the timeline export uses inside `dir`.
std::string TimelineCsvPath(const std::string& dir);
std::string TimelineJsonlPath(const std::string& dir);

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_TIMELINE_H_
