#include "telemetry/prom_export.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace ctrlshed {

namespace {

// Locale-independent double formatting, same policy as the JSONL writers.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// One exposition sample: family name + optional label + value text.
struct Sample {
  std::string labels;  ///< e.g. `{shard="0"}`, empty for plain metrics.
  std::string suffix;  ///< e.g. "_sum"; appended to the family name.
  std::string value;
};

/// Family name + label split of one registry name (see header contract).
struct Mapped {
  std::string family;
  std::string labels;
};

Mapped MapName(const std::string& name);

/// "node<id>.<rest>" (a metric federated from cluster node <id>) peels the
/// node prefix, maps the remainder recursively, and merges `node="<id>"`
/// in front of whatever labels the inner mapping produced — so
/// "node0.rt.shard1.queue" becomes rt_shard_queue{node="0",shard="1"}.
bool MapNodeName(const std::string& name, Mapped* out) {
  const std::string node_prefix = "node";
  if (name.rfind(node_prefix, 0) != 0) return false;
  size_t digits = 0;
  while (node_prefix.size() + digits < name.size() &&
         std::isdigit(static_cast<unsigned char>(
             name[node_prefix.size() + digits]))) {
    ++digits;
  }
  const size_t dot = node_prefix.size() + digits;
  if (digits == 0 || dot >= name.size() || name[dot] != '.') return false;
  const std::string id = name.substr(node_prefix.size(), digits);
  Mapped inner = MapName(name.substr(dot + 1));
  const std::string label = "node=\"" + EscapeLabelValue(id) + "\"";
  if (inner.labels.empty()) {
    inner.labels = "{" + label + "}";
  } else {
    inner.labels = "{" + label + "," + inner.labels.substr(1);
  }
  *out = std::move(inner);
  return true;
}

/// "rt.shard<i>.<leaf>", "engine.op.<name>.<leaf>" and
/// "actuation.site.<site>" fold into labeled families, "node<id>.<rest>"
/// folds recursively into a node label; everything else sanitizes whole.
Mapped MapName(const std::string& name) {
  Mapped node_mapped;
  if (MapNodeName(name, &node_mapped)) return node_mapped;
  const std::string shard_prefix = "rt.shard";
  if (name.rfind(shard_prefix, 0) == 0) {
    size_t i = shard_prefix.size();
    size_t digits = 0;
    while (i + digits < name.size() && std::isdigit(static_cast<unsigned char>(
                                           name[i + digits]))) {
      ++digits;
    }
    if (digits > 0 && i + digits < name.size() && name[i + digits] == '.') {
      const std::string shard = name.substr(i, digits);
      const std::string leaf = name.substr(i + digits + 1);
      return {"rt_shard_" + PrometheusName(leaf),
              "{shard=\"" + EscapeLabelValue(shard) + "\"}"};
    }
  }
  const std::string site_prefix = "actuation.site.";
  if (name.rfind(site_prefix, 0) == 0 && name.size() > site_prefix.size()) {
    const std::string site = name.substr(site_prefix.size());
    return {"actuation_site_periods",
            "{site=\"" + EscapeLabelValue(site) + "\"}"};
  }
  const std::string op_prefix = "engine.op.";
  if (name.rfind(op_prefix, 0) == 0) {
    const size_t last_dot = name.rfind('.');
    if (last_dot > op_prefix.size()) {
      const std::string op =
          name.substr(op_prefix.size(), last_dot - op_prefix.size());
      const std::string leaf = name.substr(last_dot + 1);
      return {"engine_op_" + PrometheusName(leaf),
              "{op=\"" + EscapeLabelValue(op) + "\"}"};
    }
  }
  return {PrometheusName(name), ""};
}

/// HELP text per family. Curated strings for the principal families; a
/// deterministic generic fallback guarantees every family — including
/// dynamically named ones (per-operator, federated) — carries a # HELP
/// line, which the exposition-format test asserts.
std::string HelpText(const std::string& family) {
  static const std::map<std::string, std::string> kHelp = {
      {"rt_queue", "Virtual queue length q(k), entry-tuple equivalents."},
      {"rt_y_hat", "Eq. 11 delay estimate at the last control period, seconds."},
      {"rt_alpha", "Entry drop probability currently in force."},
      {"rt_h_hat",
       "Aggregate measured headroom H_hat (drained base load per busy second)."},
      {"rt_pumps_total", "Engine pump iterations completed."},
      {"rt_pump_interval_s", "Wall-clock spacing of engine pump starts, seconds."},
      {"rt_actuation_lateness_s",
       "Wall-clock overshoot of each control tick past its period deadline, seconds."},
      {"rt_shard_queue", "Per-shard virtual queue length at the last sample."},
      {"rt_shard_alpha", "Per-shard entry drop probability in force."},
      {"rt_shard_h_hat", "Per-shard measured headroom H_hat (drained base load per busy second)."},
      {"rt_shard_pump_interval_s", "Per-shard pump interval summary, seconds."},
      {"sim_queue", "Virtual queue length q(k) in the simulation loop."},
      {"sim_y_hat", "Eq. 11 delay estimate in the simulation loop, seconds."},
      {"sim_alpha", "Entry drop probability in the simulation loop."},
      {"engine_op_processed_total", "Operator invocations completed."},
      {"engine_op_dropped_total", "Queued tuples shed from the operator's input."},
      {"actuation_site_periods_total",
       "Control periods whose actuation plan placed the shed at this site."},
      {"telemetry_sse_rows_published_total", "Timeline rows fanned out to SSE subscribers."},
      {"telemetry_sse_rows_dropped_total", "Timeline rows dropped to slow SSE clients."},
      {"telemetry_trace_events_total", "Trace events accepted into tracer rings."},
      {"telemetry_trace_dropped_events_total", "Trace events dropped by full tracer rings."},
      {"telemetry_export_write_failures_total", "Metrics-exporter write errors."},
      {"net_ingress_rejected_total",
       "Malformed-but-well-framed tuple payloads rejected at TCP ingress."},
      {"ctrlshed_health_verdict",
       "Control-loop health verdict: 0 ok, 1 degraded, 2 critical."},
      {"ctrlshed_health_tracking_rms",
       "Tracking-error RMS |yd-y_hat|/yd over the health window, shedding periods only."},
      {"ctrlshed_health_alpha_sat_frac",
       "Fraction of the health window with alpha at or above the saturation level."},
      {"ctrlshed_health_oscillation",
       "Fraction of consecutive periods whose u command flipped sign above the noise floor."},
      {"ctrlshed_health_stale_nodes", "Cluster nodes currently aged out of the control fold."},
      {"ctrlshed_health_h_hat", "Measured headroom H_hat at the last control period."},
  };
  const auto it = kHelp.find(family);
  if (it != kHelp.end()) return it->second;
  return "ControlShed metric " + family + ".";
}

/// Families must appear once with one # TYPE line and all their samples
/// grouped, so collect into an ordered family map before writing.
using FamilyMap = std::map<std::string, std::pair<const char*, std::vector<Sample>>>;

void Collect(FamilyMap* fams, const std::string& family, const char* type,
             Sample sample) {
  auto& slot = (*fams)[family];
  slot.first = type;
  slot.second.push_back(std::move(sample));
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  // A leading digit is not a valid metric-name start; prefix it away.
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out += '_';
  return out;
}

void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& out) {
  FamilyMap fams;
  for (const auto& [name, value] : snapshot.counters) {
    Mapped m = MapName(name);
    Collect(&fams, m.family + "_total", "counter",
            {m.labels, "", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    Mapped m = MapName(name);
    Collect(&fams, m.family, "gauge", {m.labels, "", Num(value)});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    Mapped m = MapName(name);
    // Quantile samples merge the quantile label into the family's base
    // label set, so a labeled histogram (e.g. the per-shard pump-interval
    // instruments "rt.shard<i>.pump_interval_s") folds into ONE summary
    // family with samples like {shard="0",quantile="0.5"}. An unlabeled
    // histogram keeps the historical {quantile="..."} form byte for byte.
    const struct {
      const char* q;
      double v;
    } quantiles[] = {{"0.5", h.p50}, {"0.95", h.p95}, {"0.99", h.p99}};
    for (const auto& q : quantiles) {
      std::string labels;
      if (m.labels.empty()) {
        labels = std::string("{quantile=\"") + q.q + "\"}";
      } else {
        // `m.labels` is always a brace-wrapped label set; splice the
        // quantile in before the closing brace.
        labels = m.labels.substr(0, m.labels.size() - 1) + ",quantile=\"" +
                 q.q + "\"}";
      }
      Collect(&fams, m.family, "summary", {std::move(labels), "", Num(q.v)});
    }
    Collect(&fams, m.family, "summary", {m.labels, "_sum", Num(h.sum)});
    Collect(&fams, m.family, "summary",
            {m.labels, "_count", std::to_string(h.count)});
  }

  for (const auto& [family, entry] : fams) {
    out << "# HELP " << family << ' ' << HelpText(family) << '\n';
    out << "# TYPE " << family << ' ' << entry.first << '\n';
    for (const Sample& s : entry.second) {
      out << family << s.suffix << s.labels << ' ' << s.value << '\n';
    }
  }
}

}  // namespace ctrlshed
