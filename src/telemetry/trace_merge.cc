#include "telemetry/trace_merge.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace ctrlshed {

namespace {

// ---- Minimal JSON value + recursive-descent parser ----------------------
// Scoped to what Tracer::WriteChromeTrace emits (arrays of flat objects
// with string/number values and one level of "args" nesting), but written
// as a complete little parser so a hand-edited or foreign trace file fails
// cleanly instead of corrupting the merge.

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // insertion order

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = JsonValue::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::kBool;
        out->b = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::kBool;
        out->b = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::kNull;
        return Literal("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Our writer only escapes control characters; anything in the
          // BMP round-trips as UTF-8 here.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' ||
            s_[pos_] == '+')) {
      if (s_[pos_] >= '0' && s_[pos_] <= '9') digits = true;
      ++pos_;
    }
    if (!digits) return false;
    out->type = JsonValue::kNumber;
    try {
      out->num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return std::isfinite(out->num);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void WriteJsonValue(std::ostream& out, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::kNull: out << "null"; break;
    case JsonValue::kBool: out << (v.b ? "true" : "false"); break;
    case JsonValue::kNumber: {
      // Timestamps and ids must stay integral for trace viewers; emit
      // whole numbers without an exponent or decimal point.
      if (v.num == std::floor(v.num) && std::abs(v.num) < 9.0e15) {
        out << static_cast<long long>(v.num);
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v.num);
        out << buf;
      }
      break;
    }
    case JsonValue::kString: WriteJsonString(out, v.str); break;
    case JsonValue::kArray: {
      out << '[';
      bool first = true;
      for (const JsonValue& e : v.arr) {
        if (!first) out << ',';
        first = false;
        WriteJsonValue(out, e);
      }
      out << ']';
      break;
    }
    case JsonValue::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [k, e] : v.obj) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, k);
        out << ':';
        WriteJsonValue(out, e);
      }
      out << '}';
      break;
    }
  }
}

/// Mutates a field's numeric value in place (no-op when absent).
void SetNumberField(JsonValue* obj, const std::string& key, double value) {
  for (auto& [k, v] : obj->obj) {
    if (k == key) {
      v.type = JsonValue::kNumber;
      v.num = value;
      return;
    }
  }
}

std::string StringField(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->type == JsonValue::kString) ? v->str : "";
}

bool NumberField(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::kNumber) return false;
  *out = v->num;
  return true;
}

}  // namespace

bool MergeTraceJson(
    const std::vector<std::pair<std::string, std::string>>& inputs,
    std::ostream& out, TraceMergeResult* result) {
  *result = TraceMergeResult();
  result->files = inputs.size();
  if (inputs.empty()) {
    result->error = "no input traces";
    return false;
  }

  std::vector<JsonValue> parsed(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    JsonParser parser(inputs[i].second);
    if (!parser.Parse(&parsed[i]) || parsed[i].type != JsonValue::kArray) {
      result->error =
          "input '" + inputs[i].first + "' is not a valid trace JSON array";
      return false;
    }
    result->labels.push_back(inputs[i].first);
  }

  // Pass 1 per file: clock offset + the set of period ids seen on spans.
  std::vector<std::set<int64_t>> period_sets(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    int64_t offset = 0;
    for (const JsonValue& ev : parsed[i].arr) {
      if (ev.type != JsonValue::kObject) {
        result->error = "input '" + inputs[i].first +
                        "' contains a non-object trace event";
        return false;
      }
      const JsonValue* args = ev.Find("args");
      if (args == nullptr || args->type != JsonValue::kObject) continue;
      if (StringField(ev, "name") == "clock_sync") {
        double off = 0.0;
        if (NumberField(*args, "offset_us", &off)) {
          offset = static_cast<int64_t>(off);
        }
        continue;
      }
      double period = 0.0;
      if (NumberField(*args, "period", &period)) {
        period_sets[i].insert(static_cast<int64_t>(period));
      }
    }
    result->offsets_us.push_back(offset);
  }

  std::set<int64_t> common = period_sets[0];
  for (size_t i = 1; i < inputs.size(); ++i) {
    std::set<int64_t> next;
    std::set_intersection(common.begin(), common.end(), period_sets[i].begin(),
                          period_sets[i].end(),
                          std::inserter(next, next.begin()));
    common = std::move(next);
  }
  result->common_periods.assign(common.begin(), common.end());

  // Pass 2: re-emit with per-file pids, shifted timestamps, and a
  // process_name metadata record fronting each track group.
  out << "[";
  bool first = true;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"args\":{\"name\":";
    WriteJsonString(out, inputs[i].first);
    out << "}}";
    size_t emitted = 0;
    for (JsonValue& ev : parsed[i].arr) {
      SetNumberField(&ev, "pid", pid);
      double ts = 0.0;
      if (NumberField(ev, "ts", &ts)) {
        SetNumberField(&ev, "ts",
                       ts + static_cast<double>(result->offsets_us[i]));
      }
      out << ",\n";
      WriteJsonValue(out, ev);
      if (StringField(ev, "ph") != "M") ++emitted;
    }
    result->events_per_file.push_back(emitted);
    result->events += emitted;
  }
  out << "]\n";
  return true;
}

bool MergeTraceFiles(const std::vector<std::string>& paths,
                     const std::string& out_path, TraceMergeResult* result) {
  std::vector<std::pair<std::string, std::string>> inputs;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in.good()) {
      *result = TraceMergeResult();
      result->error = "cannot read '" + path + "'";
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    // <dir>/trace.json is the conventional layout; the directory name is
    // the informative part of the track label then.
    const std::filesystem::path p(path);
    std::string label = p.filename().string();
    if (label == "trace.json" && p.has_parent_path() &&
        p.parent_path().has_filename()) {
      label = p.parent_path().filename().string();
    }
    inputs.emplace_back(std::move(label), text.str());
  }
  std::ostringstream merged;
  if (!MergeTraceJson(inputs, merged, result)) return false;
  std::ofstream out(out_path);
  if (!out.good()) {
    result->error = "cannot write '" + out_path + "'";
    return false;
  }
  out << merged.str();
  out.close();
  if (!out.good()) {
    result->error = "short write to '" + out_path + "'";
    return false;
  }
  return true;
}

}  // namespace ctrlshed
