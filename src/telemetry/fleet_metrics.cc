#include "telemetry/fleet_metrics.h"

#include <cmath>

namespace ctrlshed {

namespace {

bool NameOk(const std::string& name) {
  return !name.empty() && name.size() <= kMaxFleetNameBytes;
}

}  // namespace

MetricsWireSnapshot FlattenSnapshot(const MetricsSnapshot& snapshot) {
  MetricsWireSnapshot out;
  for (const auto& [name, value] : snapshot.counters) {
    if (out.counters.size() >= kMaxFleetEntries) break;
    if (!NameOk(name)) continue;
    out.counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (out.gauges.size() >= kMaxFleetEntries) break;
    if (!NameOk(name) || !std::isfinite(value)) continue;
    out.gauges.emplace_back(name, value);
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    if (out.histograms.size() >= kMaxFleetEntries) break;
    if (!NameOk(name)) continue;
    out.histograms.push_back({name, stats});
  }
  return out;
}

bool ValidMetricsWireSnapshot(const MetricsWireSnapshot& snapshot) {
  if (snapshot.counters.size() > kMaxFleetEntries ||
      snapshot.gauges.size() > kMaxFleetEntries ||
      snapshot.histograms.size() > kMaxFleetEntries) {
    return false;
  }
  for (const auto& [name, value] : snapshot.counters) {
    (void)value;
    if (!NameOk(name)) return false;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (!NameOk(name) || !std::isfinite(value)) return false;
  }
  for (const auto& h : snapshot.histograms) {
    if (!NameOk(h.name)) return false;
    const auto& s = h.stats;
    if (!std::isfinite(s.sum) || !std::isfinite(s.min) ||
        !std::isfinite(s.max) || !std::isfinite(s.p50) ||
        !std::isfinite(s.p95) || !std::isfinite(s.p99)) {
      return false;
    }
  }
  return true;
}

void FoldMetricsSnapshot(uint32_t node_id, const MetricsWireSnapshot& snapshot,
                         MetricsRegistry* registry) {
  const std::string prefix = "node" + std::to_string(node_id) + ".";
  for (const auto& [name, value] : snapshot.counters) {
    registry->GetCounter(prefix + name)->Store(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    registry->GetGauge(prefix + name)->Set(value);
  }
  for (const auto& h : snapshot.histograms) {
    registry->SetExternalHistogramStats(prefix + h.name, h.stats);
  }
}

}  // namespace ctrlshed
