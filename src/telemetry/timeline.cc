#include "telemetry/timeline.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/macros.h"

namespace ctrlshed {

namespace {

void WriteDouble(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

std::string TimelineRowJson(const PeriodRecord& r) {
  std::ostringstream out;
  const double e = r.m.target_delay - r.m.y_hat;
  const double u = r.v - r.m.fout;
  const double loss =
      r.m.fin > 0.0 ? std::max(0.0, (r.m.fin - r.m.admitted) / r.m.fin) : 0.0;
  out << "{\"k\":" << r.m.k << ",\"t\":";
  WriteDouble(out, r.m.t);
  out << ",\"yd\":";
  WriteDouble(out, r.m.target_delay);
  out << ",\"fin\":";
  WriteDouble(out, r.m.fin);
  out << ",\"fin_forecast\":";
  WriteDouble(out, r.m.fin_forecast);
  out << ",\"admitted\":";
  WriteDouble(out, r.m.admitted);
  out << ",\"fout\":";
  WriteDouble(out, r.m.fout);
  out << ",\"q\":";
  WriteDouble(out, r.m.queue);
  out << ",\"c\":";
  WriteDouble(out, r.m.cost);
  out << ",\"y_hat\":";
  WriteDouble(out, r.m.y_hat);
  out << ",\"y_meas\":";
  if (r.m.has_y_measured) {
    WriteDouble(out, r.m.y_measured);
  } else {
    out << "null";
  }
  out << ",\"e\":";
  WriteDouble(out, e);
  out << ",\"u\":";
  WriteDouble(out, u);
  out << ",\"v\":";
  WriteDouble(out, r.v);
  out << ",\"alpha\":";
  WriteDouble(out, r.alpha);
  out << ",\"loss\":";
  WriteDouble(out, loss);
  out << ",\"lateness\":";
  WriteDouble(out, r.lateness);
  out << ",\"site\":\"" << ActuationSiteName(r.site) << "\",\"queue_shed\":";
  WriteDouble(out, r.queue_shed);
  // Measured headroom is report-only and absent (NaN) in loops that do
  // not estimate it; emitting it conditionally keeps those rows — and
  // every historical export — byte-identical.
  if (r.h_hat == r.h_hat) {
    out << ",\"h_hat\":";
    WriteDouble(out, r.h_hat);
  }
  // Sharded runs decompose the aggregate queue; unsharded rows carry no
  // shard data and keep the historical schema.
  if (!r.shard_q.empty()) {
    out << ",\"shards\":" << r.shard_q.size() << ",\"shard_q\":[";
    for (size_t i = 0; i < r.shard_q.size(); ++i) {
      if (i > 0) out << ',';
      WriteDouble(out, r.shard_q[i]);
    }
    out << ']';
  }
  out << "}";
  return out.str();
}

void WriteTimelineJsonl(const Recorder& recorder, std::ostream& out) {
  for (const PeriodRecord& r : recorder.rows()) {
    out << TimelineRowJson(r) << "\n";
  }
}

FileTimelineSink::FileTimelineSink(const std::string& dir)
    : csv_(TimelineCsvPath(dir)), jsonl_(TimelineJsonlPath(dir)) {
  CS_CHECK_MSG(csv_.good(), "cannot open timeline.csv");
  CS_CHECK_MSG(jsonl_.good(), "cannot open timeline.jsonl");
  Recorder::WriteCsvHeader(csv_);
  csv_.flush();
}

void FileTimelineSink::Publish(const PeriodRecord& row) {
  Recorder::WriteCsvRow(row, csv_);
  csv_.flush();
  jsonl_ << TimelineRowJson(row) << "\n";
  jsonl_.flush();
  ++rows_written_;
}

std::string TimelineCsvPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "timeline.csv").string();
}

std::string TimelineJsonlPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "timeline.jsonl").string();
}

size_t WriteControlTimeline(const Recorder& recorder, const std::string& dir) {
  std::ofstream csv(TimelineCsvPath(dir));
  CS_CHECK_MSG(csv.good(), "cannot open timeline.csv");
  recorder.WriteCsv(csv);

  std::ofstream jsonl(TimelineJsonlPath(dir));
  CS_CHECK_MSG(jsonl.good(), "cannot open timeline.jsonl");
  WriteTimelineJsonl(recorder, jsonl);
  return recorder.rows().size();
}

}  // namespace ctrlshed
