#ifndef CTRLSHED_TELEMETRY_SERVER_H_
#define CTRLSHED_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics_registry.h"

namespace ctrlshed {

struct TelemetryServerOptions {
  /// TCP port to bind on `bind_address`. 0 picks an ephemeral port — read
  /// it back from port() after Start().
  int port = 0;
  /// IPv4 address to bind. The default keeps the historical loopback-only
  /// posture; a non-loopback bind (e.g. "0.0.0.0" for a real fleet) is
  /// refused at Start() unless `auth_token` is set.
  std::string bind_address = "127.0.0.1";
  /// When non-empty, every request must present this bearer token —
  /// `Authorization: Bearer <token>` or, for EventSource/dashboard use
  /// where headers are unavailable, a `?token=<token>` query parameter.
  /// Compared in constant time; failures get 401. Empty (the default)
  /// keeps loopback behavior unchanged.
  std::string auth_token;
  /// Per-client pending-write cap. A client that cannot drain its socket
  /// fast enough loses whole timeline rows (counted, never blocking the
  /// publisher) once its buffer is full — the tracer-ring discipline
  /// applied to sockets.
  size_t client_buffer_bytes = 256 * 1024;
  /// Timeline rows replayed to a subscriber that connects mid-run, so a
  /// late dashboard (or the e2e test) still sees the rows published before
  /// its GET /timeline arrived.
  size_t history_rows = 4096;
  /// Connections beyond this are accepted and immediately closed.
  int max_clients = 64;
  /// Stop() keeps flushing connected clients for at most this many wall
  /// seconds before force-closing them.
  double drain_timeout_wall = 2.0;
  /// When > 0, SO_SNDBUF is set on accepted sockets. Tests use a tiny
  /// value to provoke slow-client drops without megabytes of traffic.
  int sndbuf_bytes = 0;
};

/// Dependency-free HTTP/1.1 observability server: one poll()-based thread,
/// nonblocking sockets, loopback by default (non-loopback binds require a
/// bearer token — see TelemetryServerOptions). Endpoints:
///
///   GET /          embedded HTML dashboard charting the SSE feed live
///   GET /metrics   Prometheus text exposition of the MetricsRegistry
///   GET /timeline  SSE stream of per-period timeline rows (history replay
///                  on connect, then live)
///   GET /status    one JSON snapshot: uptime, SSE stats, build block,
///                  app section
///   GET /fleet     cluster membership JSON from the fleet callback
///                  ({"nodes":[]} when no callback is installed)
///   GET /health    control-loop health verdict from the health callback
///                  (ok/degraded answer 200, critical 503)
///   POST /debug/dump  writes a flight-recorder dump (see
///                  telemetry/flight_recorder.h) and returns its JSON
///
/// The publisher side (PublishTimelineRow) never blocks on a client: rows
/// that do not fit a client's bounded buffer are dropped for that client
/// and counted. Other methods return 405, unknown paths 404.
class TelemetryServer {
 public:
  /// `registry` backs GET /metrics; may be null (renders empty). The
  /// server also registers `telemetry.sse.rows_published` /
  /// `telemetry.sse.rows_dropped` counters in it so the live-feed health
  /// is itself scrapeable.
  TelemetryServer(MetricsRegistry* registry, TelemetryServerOptions options);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds <bind_address>:<port>, starts the serving thread. Aborts if
  /// the port cannot be bound, the address does not parse, or a
  /// non-loopback bind is requested without an auth token.
  void Start();

  /// Flushes connected clients (bounded by drain_timeout_wall), closes
  /// all sockets, joins the thread. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 requests). Valid after Start().
  int port() const { return port_; }

  /// Enqueues one timeline row (serialized JSON object, no newline) to
  /// every /timeline subscriber and the replay history. Called from the
  /// control thread; never blocks on client sockets.
  void PublishTimelineRow(const std::string& row_json);

  /// Supplies the "app" section of GET /status: a complete JSON value
  /// (object) describing run config / shard summaries / trace counts.
  /// Called from the server thread; must be thread-safe and non-blocking.
  void SetStatusCallback(std::function<std::string()> cb);

  /// Supplies the GET /fleet body: a complete JSON object describing
  /// cluster membership (per-node q/alpha/loss/freshness). Same contract
  /// as the status callback: server thread, thread-safe, non-blocking.
  void SetFleetCallback(std::function<std::string()> cb);

  /// Supplies the GET /health response: HTTP status code plus a complete
  /// JSON body (HealthReport::HttpStatus()/ToJson()). Same contract as
  /// the status callback. Without a callback /health answers 200 with
  /// {"verdict":"unknown",…}.
  void SetHealthCallback(std::function<std::pair<int, std::string>()> cb);

  uint64_t rows_published() const {
    return rows_published_.load(std::memory_order_relaxed);
  }
  /// Total rows dropped across all slow clients.
  uint64_t rows_dropped() const {
    return rows_dropped_.load(std::memory_order_relaxed);
  }
  uint64_t clients_accepted() const {
    return clients_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Client;

  void Serve();
  void AcceptNew();
  void HandleReadable(Client* c);
  void HandleRequest(Client* c, const std::string& method,
                     const std::string& path);
  void FlushClient(Client* c);
  void CloseClient(Client* c);
  std::string StatusJson() const;

  MetricsRegistry* registry_;
  TelemetryServerOptions options_;
  int port_ = -1;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};

  mutable std::mutex mu_;  ///< Guards clients_, history_, the callbacks.
  std::vector<std::unique_ptr<Client>> clients_;
  std::deque<std::string> history_;
  std::function<std::string()> status_cb_;
  std::function<std::string()> fleet_cb_;
  std::function<std::pair<int, std::string>()> health_cb_;

  std::atomic<uint64_t> rows_published_{0};
  std::atomic<uint64_t> rows_dropped_{0};
  std::atomic<uint64_t> clients_accepted_{0};
  Counter* published_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  double start_wall_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_SERVER_H_
