#include "telemetry/telemetry.h"

#include <filesystem>
#include <sstream>
#include <utility>

#include "common/macros.h"
#include "telemetry/sse_sink.h"

namespace ctrlshed {

namespace {
// Exporter sleep granularity; bounds Stop() latency like the rt threads.
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);
}  // namespace

std::unique_ptr<Telemetry> Telemetry::Open(const TelemetryOptions& options) {
  if (options.dir.empty() && options.server_port < 0) return nullptr;
  if (!options.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    CS_CHECK_MSG(!ec, "cannot create telemetry directory");
  }
  return std::unique_ptr<Telemetry>(new Telemetry(options));
}

Telemetry::Telemetry(TelemetryOptions options) : options_(std::move(options)) {
  CS_CHECK_MSG(options_.export_period_wall > 0.0,
               "export period must be positive");
  const bool have_dir = !options_.dir.empty();
  if (have_dir && options_.trace) {
    tracer_ = std::make_unique<Tracer>(options_.trace_buffer_capacity);
    trace_events_counter_ = metrics_.GetCounter("telemetry.trace.events");
    trace_dropped_counter_ =
        metrics_.GetCounter("telemetry.trace.dropped_events");
  }
  if (have_dir) {
    export_failures_counter_ =
        metrics_.GetCounter("telemetry.export.write_failures");
    metrics_out_.open(metrics_path());
    CS_CHECK_MSG(metrics_out_.good(), "cannot open metrics.jsonl");
    file_sink_ = std::make_unique<FileTimelineSink>(options_.dir);
    sinks_.push_back(file_sink_.get());
  }
  if (options_.server_port >= 0) {
    TelemetryServerOptions server_opts;
    server_opts.port = options_.server_port;
    server_opts.bind_address = options_.server_bind_address;
    server_opts.auth_token = options_.server_auth_token;
    server_opts.client_buffer_bytes = options_.server_client_buffer_bytes;
    server_opts.history_rows = options_.server_history_rows;
    server_opts.sndbuf_bytes = options_.server_sndbuf_bytes;
    server_ = std::make_unique<TelemetryServer>(&metrics_, server_opts);
    server_->Start();
    // The default status callback already covers trace health; a run can
    // enrich it with SetStatusSource.
    server_->SetStatusCallback([this] {
      std::ostringstream out;
      out << "{\"trace_events\":" << trace_events()
          << ",\"trace_dropped\":" << trace_dropped()
          << ",\"timeline_rows\":" << timeline_rows() << ",\"run\":"
          << (app_status_ ? app_status_() : std::string("null")) << "}";
      return out.str();
    });
    sse_sink_ = std::make_unique<SseTimelineSink>(server_.get());
    sinks_.push_back(sse_sink_.get());
    if (options_.on_server_start) options_.on_server_start(server_->port());
  }
  start_wall_ = std::chrono::steady_clock::now();
  if (have_dir) {
    exporter_ = std::thread([this] { ExportLoop(); });
  }
}

Telemetry::~Telemetry() { Stop(); }

TraceBuffer* Telemetry::RegisterThread(const std::string& name) {
  return tracer_ ? tracer_->RegisterThread(name) : nullptr;
}

void Telemetry::PublishTimelineRow(const PeriodRecord& row) {
  for (TimelineSink* sink : sinks_) sink->Publish(row);
  timeline_rows_.fetch_add(1, std::memory_order_relaxed);
}

void Telemetry::SetStatusSource(std::function<std::string()> app_status) {
  // Installed before the run's threads start; the server thread reads it
  // through the status callback afterwards.
  app_status_ = std::move(app_status);
}

std::string Telemetry::trace_path() const {
  return (std::filesystem::path(options_.dir) / "trace.json").string();
}

std::string Telemetry::metrics_path() const {
  return (std::filesystem::path(options_.dir) / "metrics.jsonl").string();
}

uint64_t Telemetry::trace_events() const {
  return tracer_ ? tracer_->collected_events() : 0;
}

uint64_t Telemetry::trace_dropped() const {
  return tracer_ ? tracer_->dropped_events() : 0;
}

uint64_t Telemetry::sse_rows_published() const {
  return server_ ? server_->rows_published() : 0;
}

uint64_t Telemetry::sse_rows_dropped() const {
  return server_ ? server_->rows_dropped() : 0;
}

uint64_t Telemetry::sse_clients_accepted() const {
  return server_ ? server_->clients_accepted() : 0;
}

void Telemetry::FlushOnce() {
  if (tracer_) {
    tracer_->Drain();
    // Mirror the tracer's own loss accounting into the registry (Store,
    // not Add: the tracer keeps the cumulative truth).
    trace_events_counter_->Store(tracer_->collected_events());
    trace_dropped_counter_->Store(tracer_->dropped_events());
  }
  if (!metrics_out_.is_open()) return;
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_wall_)
                             .count();
  metrics_.WriteJsonLine(elapsed, metrics_out_);
  metrics_out_.flush();
  if (!metrics_out_.good()) {
    // A full disk or yanked mount must not silently freeze metrics.jsonl:
    // count the failure (visible on /metrics) and keep trying.
    export_failures_counter_->Add();
    metrics_out_.clear();
  }
}

void Telemetry::ExportLoop() {
  using Clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.export_period_wall));
  auto deadline = Clock::now() + period;
  while (!stop_.load(std::memory_order_acquire)) {
    const auto now = Clock::now();
    if (now < deadline) {
      const auto remaining = deadline - now;
      std::this_thread::sleep_for(
          remaining < Clock::duration(kMaxSleepChunk)
              ? remaining
              : Clock::duration(kMaxSleepChunk));
      continue;
    }
    FlushOnce();
    deadline += period;
    if (deadline < now) deadline = now + period;
  }
}

void Telemetry::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  if (exporter_.joinable()) exporter_.join();
  FlushOnce();
  metrics_out_.close();
  if (tracer_) {
    std::ofstream trace_out(trace_path());
    CS_CHECK_MSG(trace_out.good(), "cannot open trace.json");
    tracer_->WriteChromeTrace(trace_out);
  }
  // Server last: clients get every row published before Stop, then a
  // bounded drain. Its status callback reads the tracer's final counts.
  if (server_) server_->Stop();
}

}  // namespace ctrlshed
