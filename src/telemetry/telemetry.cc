#include "telemetry/telemetry.h"

#include <filesystem>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

namespace {
// Exporter sleep granularity; bounds Stop() latency like the rt threads.
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);
}  // namespace

std::unique_ptr<Telemetry> Telemetry::Open(const TelemetryOptions& options) {
  if (options.dir.empty()) return nullptr;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  CS_CHECK_MSG(!ec, "cannot create telemetry directory");
  return std::unique_ptr<Telemetry>(new Telemetry(options));
}

Telemetry::Telemetry(TelemetryOptions options) : options_(std::move(options)) {
  CS_CHECK_MSG(options_.export_period_wall > 0.0,
               "export period must be positive");
  if (options_.trace) {
    tracer_ = std::make_unique<Tracer>(options_.trace_buffer_capacity);
  }
  metrics_out_.open(metrics_path());
  CS_CHECK_MSG(metrics_out_.good(), "cannot open metrics.jsonl");
  start_wall_ = std::chrono::steady_clock::now();
  exporter_ = std::thread([this] { ExportLoop(); });
}

Telemetry::~Telemetry() { Stop(); }

TraceBuffer* Telemetry::RegisterThread(const std::string& name) {
  return tracer_ ? tracer_->RegisterThread(name) : nullptr;
}

std::string Telemetry::trace_path() const {
  return (std::filesystem::path(options_.dir) / "trace.json").string();
}

std::string Telemetry::metrics_path() const {
  return (std::filesystem::path(options_.dir) / "metrics.jsonl").string();
}

uint64_t Telemetry::trace_events() const {
  return tracer_ ? tracer_->collected_events() : 0;
}

uint64_t Telemetry::trace_dropped() const {
  return tracer_ ? tracer_->dropped_events() : 0;
}

void Telemetry::FlushOnce() {
  if (tracer_) tracer_->Drain();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_wall_)
                             .count();
  metrics_.WriteJsonLine(elapsed, metrics_out_);
  metrics_out_.flush();
}

void Telemetry::ExportLoop() {
  using Clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.export_period_wall));
  auto deadline = Clock::now() + period;
  while (!stop_.load(std::memory_order_acquire)) {
    const auto now = Clock::now();
    if (now < deadline) {
      const auto remaining = deadline - now;
      std::this_thread::sleep_for(
          remaining < Clock::duration(kMaxSleepChunk)
              ? remaining
              : Clock::duration(kMaxSleepChunk));
      continue;
    }
    FlushOnce();
    deadline += period;
    if (deadline < now) deadline = now + period;
  }
}

void Telemetry::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  if (exporter_.joinable()) exporter_.join();
  FlushOnce();
  metrics_out_.close();
  if (tracer_) {
    std::ofstream trace_out(trace_path());
    CS_CHECK_MSG(trace_out.good(), "cannot open trace.json");
    tracer_->WriteChromeTrace(trace_out);
  }
}

}  // namespace ctrlshed
