#include "telemetry/op_telemetry.h"

#include <string>

#include "common/macros.h"

namespace ctrlshed {

OperatorTelemetry::OperatorTelemetry(Telemetry* telemetry, TraceBuffer* buf,
                                     const QueryNetwork& network)
    : buf_(buf) {
  CS_CHECK(telemetry != nullptr);
  ops_.resize(network.NumOperators());
  for (size_t i = 0; i < network.NumOperators(); ++i) {
    const OperatorBase* op = network.Operator(i);
    PerOp& slot = ops_[static_cast<size_t>(op->id())];
    if (telemetry->tracer() != nullptr) {
      slot.span_name = telemetry->tracer()->Intern("op:" + op->name());
    }
    slot.processed =
        telemetry->metrics()->GetCounter("engine.op." + op->name() + ".processed");
    slot.dropped =
        telemetry->metrics()->GetCounter("engine.op." + op->name() + ".dropped");
  }
}

void OperatorTelemetry::OnInvocationStart(const OperatorBase& op) {
  (void)op;
  if (buf_ != nullptr) start_us_ = buf_->NowUs();
}

void OperatorTelemetry::OnInvocationEnd(const OperatorBase& op,
                                        double cost_seconds) {
  (void)cost_seconds;
  const PerOp& slot = ops_[static_cast<size_t>(op.id())];
  slot.processed->Add();
  if (buf_ != nullptr && slot.span_name != nullptr) {
    buf_->Emit({slot.span_name, start_us_, buf_->NowUs() - start_us_});
  }
}

void OperatorTelemetry::OnInvocationBatch(const OperatorBase& op, uint64_t n,
                                          double cost_seconds) {
  (void)cost_seconds;
  if (n == 0) return;
  const PerOp& slot = ops_[static_cast<size_t>(op.id())];
  slot.processed->Add(n);
  // One span covers the whole batch (started at OnInvocationStart); the
  // per-invocation span shape of the unbatched path is preserved exactly
  // at n == 1.
  if (buf_ != nullptr && slot.span_name != nullptr) {
    buf_->Emit({slot.span_name, start_us_, buf_->NowUs() - start_us_});
  }
}

void OperatorTelemetry::OnQueueDrop(const OperatorBase& op) {
  ops_[static_cast<size_t>(op.id())].dropped->Add();
}

}  // namespace ctrlshed
