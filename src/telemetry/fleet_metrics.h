#ifndef CTRLSHED_TELEMETRY_FLEET_METRICS_H_
#define CTRLSHED_TELEMETRY_FLEET_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics_registry.h"

namespace ctrlshed {

/// Metrics federation: every node piggybacks a compact snapshot of its
/// registry on each kStatsReport, and the controller folds the entries
/// into its own registry under a "node<id>." name prefix. The Prometheus
/// exporter then peels that prefix into a `node="<id>"` label, so one
/// scrape of the controller exposes the whole fleet.
///
/// This header is the registry half (flatten + fold); the wire codec for
/// the snapshot section lives with the rest of the cluster protocol in
/// cluster/wire.{h,cc} to keep cs_telemetry free of net dependencies.

/// Bounds on one piggybacked snapshot: a hostile or runaway report must
/// never balloon the controller's registry or the frame size. Flatten
/// truncates to these caps; decoders reject anything beyond them.
inline constexpr uint32_t kMaxFleetEntries = 256;     // per section
inline constexpr uint32_t kMaxFleetNameBytes = 160;   // per metric name

/// A registry snapshot flattened into wire-friendly ordered vectors.
/// Histograms carry the pre-reduced stats the Prometheus summary needs
/// (the raw buckets stay on the node).
struct MetricsWireSnapshot {
  struct Hist {
    std::string name;
    MetricsSnapshot::HistogramStats stats;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Hist> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Flattens a registry snapshot for the wire. Entries beyond
/// kMaxFleetEntries per section and names longer than kMaxFleetNameBytes
/// are dropped (registry names are short dotted literals, so the caps are
/// safety rails, not working limits).
MetricsWireSnapshot FlattenSnapshot(const MetricsSnapshot& snapshot);

/// Validates decoded wire content: section sizes and name lengths within
/// the caps above, every double finite. Decoders reject the whole report
/// on failure (same all-or-nothing policy as the tuple codec).
bool ValidMetricsWireSnapshot(const MetricsWireSnapshot& snapshot);

/// Folds a node's snapshot into `registry` under the "node<id>." prefix:
/// counters are Store()d (node values are cumulative — the node is the
/// single writer of its mirror), gauges Set(), histogram stats installed
/// as external pre-aggregated summaries.
void FoldMetricsSnapshot(uint32_t node_id, const MetricsWireSnapshot& snapshot,
                         MetricsRegistry* registry);

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_FLEET_METRICS_H_
