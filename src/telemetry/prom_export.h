#ifndef CTRLSHED_TELEMETRY_PROM_EXPORT_H_
#define CTRLSHED_TELEMETRY_PROM_EXPORT_H_

#include <ostream>
#include <string>

#include "telemetry/metrics_registry.h"

namespace ctrlshed {

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4), the payload of the telemetry server's GET /metrics.
///
/// Registry names are dot-separated; the renderer maps them onto
/// Prometheus conventions:
///  - every name is sanitized to [a-zA-Z0-9_:] ("rt.pumps" -> "rt_pumps");
///  - counters get the "_total" suffix;
///  - per-shard instruments "rt.shard<i>.<leaf>" become
///    `rt_shard_<leaf>{shard="<i>"}` so a shard is a label, not a metric
///    family per shard;
///  - per-operator instruments "engine.op.<name>.<leaf>" become
///    `engine_op_<leaf>{op="<name>"}`;
///  - federated node metrics "node<id>.<rest>" map <rest> recursively and
///    prepend `node="<id>"` to the inner labels, so the controller's one
///    scrape exposes the whole fleet ("node2.rt.shard0.queue" ->
///    `rt_shard_queue{node="2",shard="0"}`);
///  - histograms render as summaries: `<name>{quantile="0.5|0.95|0.99"}`
///    plus `<name>_sum` and `<name>_count`.
void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& out);

/// Sanitizes one metric name to the Prometheus charset (exposed for tests).
std::string PrometheusName(const std::string& name);

}  // namespace ctrlshed

#endif  // CTRLSHED_TELEMETRY_PROM_EXPORT_H_
