#include "telemetry/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/build_info.h"
#include "common/macros.h"
#include "control/actuation_plan.h"

namespace ctrlshed {

namespace {

// Process-global recorder slots. Registration claims an empty slot with
// compare-exchange; the dump path reads them lock-free from signal
// context. A full table silently skips registration — the loop still
// records locally, it just stays out of dumps.
constexpr size_t kMaxRecorders = 16;
std::atomic<FlightRecorder*> g_recorders[kMaxRecorders];

char g_dump_path[512] = "ctrlshed.flightdump.json";

// Fatal paths (CS_CHECK, SIGSEGV, SIGABRT) dump at most once per
// process so a CS_CHECK-triggered abort does not overwrite its own dump
// from the SIGABRT handler. SIGUSR1 and /debug/dump bypass this.
std::atomic<bool> g_fatal_dumped{false};

/// Buffered write()-only emitter. Everything below runs in signal
/// context: no locks, no allocation, no stdio streams. snprintf for
/// numeric formatting is not formally async-signal-safe but performs no
/// allocation for %g/%llu on the libcs we target — the accepted
/// crash-handler trade-off.
class DumpWriter {
 public:
  explicit DumpWriter(int fd) : fd_(fd) {}
  ~DumpWriter() { Flush(); }

  void Str(const char* s) {
    while (*s != '\0') Char(*s++);
  }

  void Char(char c) {
    if (len_ == sizeof(buf_)) Flush();
    buf_[len_++] = c;
  }

  /// Appends `s` JSON-escaped (quotes, backslash; control chars dropped).
  void Escaped(const char* s, size_t max_len) {
    for (size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
      const char c = s[i];
      if (c == '"' || c == '\\') {
        Char('\\');
        Char(c);
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        Char(c);
      }
    }
  }

  void Num(double v) {
    char tmp[40];
    const int n = std::snprintf(tmp, sizeof(tmp), "%.17g", v);
    for (int i = 0; i < n; ++i) Char(tmp[i]);
  }

  void Num(uint64_t v) {
    char tmp[24];
    const int n = std::snprintf(tmp, sizeof(tmp), "%llu",
                                static_cast<unsigned long long>(v));
    for (int i = 0; i < n; ++i) Char(tmp[i]);
  }

  void Num(int v) {
    char tmp[16];
    const int n = std::snprintf(tmp, sizeof(tmp), "%d", v);
    for (int i = 0; i < n; ++i) Char(tmp[i]);
  }

  void Flush() {
    size_t off = 0;
    while (off < len_) {
      const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n <= 0) {
        ok_ = false;
        break;
      }
      off += static_cast<size_t>(n);
    }
    len_ = 0;
  }

  bool ok() const { return ok_; }

 private:
  int fd_;
  char buf_[4096];
  size_t len_ = 0;
  bool ok_ = true;
};

void WritePeriod(DumpWriter& w, const FlightPeriod& p) {
  w.Str("{\"k\":");
  w.Num(p.k);
  w.Str(",\"t\":");
  w.Num(p.t);
  w.Str(",\"yd\":");
  w.Num(p.yd);
  w.Str(",\"fin\":");
  w.Num(p.fin);
  w.Str(",\"admitted\":");
  w.Num(p.admitted);
  w.Str(",\"fout\":");
  w.Num(p.fout);
  w.Str(",\"q\":");
  w.Num(p.queue);
  w.Str(",\"c\":");
  w.Num(p.cost);
  w.Str(",\"y_hat\":");
  w.Num(p.y_hat);
  w.Str(",\"v\":");
  w.Num(p.v);
  w.Str(",\"alpha\":");
  w.Num(p.alpha);
  w.Str(",\"lateness\":");
  w.Num(p.lateness);
  w.Str(",\"queue_shed\":");
  w.Num(p.queue_shed);
  if (p.h_hat == p.h_hat) {  // NaN-free only; NaN is not valid JSON.
    w.Str(",\"h_hat\":");
    w.Num(p.h_hat);
  }
  w.Str(",\"site\":\"");
  w.Str(ActuationSiteName(static_cast<ActuationSite>(p.site)).data());
  w.Str("\"}");
}

void WriteEvent(DumpWriter& w, const FlightEvent& e) {
  w.Str("{\"t\":");
  w.Num(e.t);
  w.Str(",\"what\":\"");
  w.Escaped(e.what, sizeof(e.what));
  w.Str("\",\"detail\":\"");
  w.Escaped(e.detail, sizeof(e.detail));
  w.Str("\"}");
}

void WriteRecorder(DumpWriter& w, const FlightRecorder& r,
                   const FlightPeriod* periods, const FlightEvent* events,
                   uint64_t period_cursor, uint64_t event_cursor) {
  w.Str("{\"name\":\"");
  w.Escaped(r.name(), 32);
  w.Str("\",\"periods_recorded\":");
  w.Num(period_cursor);
  w.Str(",\"events_recorded\":");
  w.Num(event_cursor);
  w.Str(",\"periods\":[");
  const uint64_t pn =
      period_cursor < FlightRecorder::kPeriodCapacity
          ? period_cursor
          : static_cast<uint64_t>(FlightRecorder::kPeriodCapacity);
  for (uint64_t i = 0; i < pn; ++i) {
    if (i > 0) w.Char(',');
    WritePeriod(w, periods[(period_cursor - pn + i) %
                           FlightRecorder::kPeriodCapacity]);
  }
  w.Str("],\"events\":[");
  const uint64_t en =
      event_cursor < FlightRecorder::kEventCapacity
          ? event_cursor
          : static_cast<uint64_t>(FlightRecorder::kEventCapacity);
  for (uint64_t i = 0; i < en; ++i) {
    if (i > 0) w.Char(',');
    WriteEvent(w,
               events[(event_cursor - en + i) % FlightRecorder::kEventCapacity]);
  }
  w.Str("]}");
}

void FatalCheckHook(const char* expr, const char* file, int line,
                    const char* msg) {
  if (g_fatal_dumped.exchange(true, std::memory_order_acq_rel)) return;
  char detail[256];
  std::snprintf(detail, sizeof(detail), "%s at %s:%d%s%s", expr, file, line,
                msg[0] != '\0' ? " — " : "", msg);
  WriteFlightDump("cs_check", detail);
}

void FatalSignalHandler(int sig) {
  if (!g_fatal_dumped.exchange(true, std::memory_order_acq_rel)) {
    WriteFlightDump("signal", sig == SIGSEGV ? "SIGSEGV" : "SIGABRT");
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void Usr1Handler(int /*sig*/) { WriteFlightDump("sigusr1", "SIGUSR1"); }

void InstallFatalHookOnce() {
  static const bool installed = [] {
    internal::SetFatalHook(&FatalCheckHook);
    return true;
  }();
  (void)installed;
}

}  // namespace

FlightRecorder::FlightRecorder(const char* name) {
  std::snprintf(name_, sizeof(name_), "%s", name);
  InstallFatalHookOnce();
  for (size_t i = 0; i < kMaxRecorders; ++i) {
    FlightRecorder* expected = nullptr;
    if (g_recorders[i].compare_exchange_strong(expected, this,
                                               std::memory_order_acq_rel)) {
      break;
    }
  }
}

FlightRecorder::~FlightRecorder() {
  for (size_t i = 0; i < kMaxRecorders; ++i) {
    FlightRecorder* expected = this;
    if (g_recorders[i].compare_exchange_strong(expected, nullptr,
                                               std::memory_order_acq_rel)) {
      break;
    }
  }
}

void FlightRecorder::RecordPeriod(const PeriodRecord& row) {
  const uint64_t cursor = period_cursor_.load(std::memory_order_relaxed);
  FlightPeriod& p = periods_[cursor % kPeriodCapacity];
  p.k = row.m.k;
  p.t = row.m.t;
  p.yd = row.m.target_delay;
  p.fin = row.m.fin;
  p.admitted = row.m.admitted;
  p.fout = row.m.fout;
  p.queue = row.m.queue;
  p.cost = row.m.cost;
  p.y_hat = row.m.y_hat;
  p.v = row.v;
  p.alpha = row.alpha;
  p.lateness = row.lateness;
  p.queue_shed = row.queue_shed;
  p.h_hat = row.h_hat;
  p.site = static_cast<uint8_t>(row.site);
  period_cursor_.store(cursor + 1, std::memory_order_release);
}

void FlightRecorder::RecordEvent(const char* what, const char* detail,
                                 double t) {
  const uint64_t cursor =
      event_cursor_.fetch_add(1, std::memory_order_relaxed);
  FlightEvent& e = events_[cursor % kEventCapacity];
  e.t = t;
  std::snprintf(e.what, sizeof(e.what), "%s", what);
  std::snprintf(e.detail, sizeof(e.detail), "%s", detail);
}

bool SetFlightDumpPath(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(g_dump_path)) return false;
  std::memcpy(g_dump_path, path.c_str(), path.size() + 1);
  return true;
}

std::string FlightDumpPath() { return g_dump_path; }

void InstallFlightDumpHandlers() {
  InstallFatalHookOnce();
  static const bool installed = [] {
    struct sigaction fatal {};
    fatal.sa_handler = &FatalSignalHandler;
    sigemptyset(&fatal.sa_mask);
    ::sigaction(SIGSEGV, &fatal, nullptr);
    ::sigaction(SIGABRT, &fatal, nullptr);
    struct sigaction usr1 {};
    usr1.sa_handler = &Usr1Handler;
    sigemptyset(&usr1.sa_mask);
    usr1.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR1, &usr1, nullptr);
    return true;
  }();
  (void)installed;
}

bool WriteFlightDump(const char* reason, const char* detail) {
  const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  DumpWriter w(fd);
  w.Str("{\"reason\":\"");
  w.Escaped(reason, 32);
  w.Str("\",\"detail\":\"");
  w.Escaped(detail, 256);
  const BuildInfo& b = GetBuildInfo();
  w.Str("\",\"build\":{\"git\":\"");
  w.Escaped(b.git_describe, 128);
  w.Str("\",\"compiler\":\"");
  w.Escaped(b.compiler, 128);
  w.Str("\",\"build_type\":\"");
  w.Escaped(b.build_type, 64);
  w.Str("\",\"sanitizer\":\"");
  w.Escaped(b.sanitizer, 32);
  w.Str("\"},\"recorders\":[");
  bool first = true;
  for (size_t i = 0; i < kMaxRecorders; ++i) {
    const FlightRecorder* r =
        g_recorders[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    if (!first) w.Char(',');
    first = false;
    WriteRecorder(w, *r, r->periods_, r->events_,
                  r->period_cursor_.load(std::memory_order_acquire),
                  r->event_cursor_.load(std::memory_order_acquire));
  }
  w.Str("]}\n");
  w.Flush();
  const bool ok = w.ok();
  ::close(fd);
  return ok;
}

}  // namespace ctrlshed
