#include "sysid/frequency_response.h"

#include <cmath>
#include <complex>
#include <numbers>

#include "common/macros.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

namespace ctrlshed {

double IntegratorGain(double freq_hz, double sample_period) {
  CS_CHECK_MSG(freq_hz > 0.0 && sample_period > 0.0, "invalid frequency");
  const std::complex<double> z =
      std::exp(std::complex<double>(0.0, 2.0 * std::numbers::pi * freq_hz *
                                             sample_period));
  return std::abs(sample_period / (z - 1.0));
}

std::vector<FrequencyPoint> MeasureFrequencyResponse(
    const FrequencySweepParams& params) {
  std::vector<FrequencyPoint> out;
  out.reserve(params.freqs_hz.size());

  for (double f : params.freqs_hz) {
    CS_CHECK_MSG(f > 0.0, "frequency must be positive");
    const double duration = params.cycles / f;

    Simulation sim;
    QueryNetwork net;
    BuildIdentificationNetwork(&net,
                               params.headroom / params.capacity_rate);
    Engine engine(&net, params.headroom);
    sim.AttachProcess(&engine);

    // Preload a backlog so q stays far from the q = 0 nonlinearity.
    for (int i = 0; i < static_cast<int>(params.preload_tuples); ++i) {
      Tuple t;
      t.value = 0.5;
      engine.Inject(t, 0.0);
    }

    // Sine input centered exactly on the service capacity.
    RateTrace trace = MakeSineTrace(
        duration, params.capacity_rate - params.amplitude,
        params.capacity_rate + params.amplitude, 1.0 / f,
        /*slot_width=*/std::min(0.25, 0.05 / f));
    ArrivalSource source(0, std::move(trace),
                         ArrivalSource::Spacing::kDeterministic, params.seed);
    source.Start(&sim, [&engine, &sim](const Tuple& t) {
      engine.Inject(t, sim.now());
    });

    // Sample q(k) every sample_period.
    std::vector<double> q_samples;
    sim.ScheduleEvery(params.sample_period, params.sample_period,
                      [&](SimTime) {
                        q_samples.push_back(engine.VirtualQueueLength());
                        return true;
                      });
    sim.Run(duration);

    // Discard the first two cycles (transient), correlate the rest.
    const size_t skip = static_cast<size_t>(2.0 / (f * params.sample_period));
    CS_CHECK_MSG(q_samples.size() > skip + 8, "sweep too short");
    double mean = 0.0;
    for (size_t k = skip; k < q_samples.size(); ++k) mean += q_samples[k];
    mean /= static_cast<double>(q_samples.size() - skip);

    std::complex<double> acc = 0.0;
    for (size_t k = skip; k < q_samples.size(); ++k) {
      const double t = static_cast<double>(k + 1) * params.sample_period;
      const double w = 2.0 * std::numbers::pi * f;
      acc += (q_samples[k] - mean) *
             std::exp(std::complex<double>(0.0, -w * t));
    }
    const double n = static_cast<double>(q_samples.size() - skip);
    // Single-bin amplitude of q; the input sine's complex amplitude is
    // A / (2 j) at the same bin normalization, so gain = |q_bin| * 2 / A.
    const double q_amp = 2.0 * std::abs(acc) / n;

    FrequencyPoint p;
    p.freq_hz = f;
    p.gain = q_amp / params.amplitude;
    // Input is A sin(wt) => complex amplitude phase -pi/2; report q's
    // phase relative to the input.
    p.phase_rad = std::arg(acc) + std::numbers::pi / 2.0;
    while (p.phase_rad > std::numbers::pi) p.phase_rad -= 2.0 * std::numbers::pi;
    while (p.phase_rad < -std::numbers::pi) p.phase_rad += 2.0 * std::numbers::pi;
    p.model_gain = IntegratorGain(f, params.sample_period);
    out.push_back(p);
  }
  return out;
}

}  // namespace ctrlshed
