#ifndef CTRLSHED_SYSID_IDENTIFICATION_H_
#define CTRLSHED_SYSID_IDENTIFICATION_H_

#include <vector>

#include "common/series.h"
#include "common/sim_time.h"
#include "engine/engine.h"

namespace ctrlshed {

/// Groups per-tuple delays by the control period their tuple ARRIVED in —
/// the paper's definition of the output signal y(k) ("average processing
/// delay of data tuples that arrive within a small time window T"). Wire
/// OnDeparture as a departure observer, then read the per-period series.
class ArrivalGroupedDelays {
 public:
  explicit ArrivalGroupedDelays(SimTime period);

  void OnDeparture(const Departure& d);

  /// Per-period mean delays up to `duration`; periods with no arrivals (or
  /// whose tuples never departed) carry the previous period's value.
  TimeSeries Series(SimTime duration) const;

 private:
  SimTime period_;
  std::vector<double> sum_;
  std::vector<uint64_t> count_;
};

/// Result of one step-response identification run (one curve of Fig. 5).
struct StepResponse {
  double rate = 0.0;              ///< Post-step input rate, tuples/s.
  TimeSeries delay;               ///< y(k), grouped by arrival period.
  TimeSeries queue;               ///< q(k) at period boundaries.
  std::vector<double> delta_delay;  ///< y(k) - y(k-1) (Fig. 5C).
};

/// Runs an uncontrolled engine against a step input that jumps from a tiny
/// trickle to `rate` at `step_at`, for `duration` seconds. The standard
/// identification plant is used (capacity ~ `capacity_rate`,
/// true headroom `headroom_true`).
StepResponse RunStepResponse(double rate, SimTime duration, SimTime step_at,
                             double capacity_rate, double headroom_true,
                             uint64_t seed);

/// True when the step response diverges: the delay keeps growing through
/// the tail of the run instead of settling (the paper's criterion for the
/// threshold load in Fig. 5).
bool DelayDiverges(const TimeSeries& delay, SimTime step_at);

/// Binary-searches the capacity threshold (the largest stable input rate)
/// in [lo, hi] to within `tol` tuples/s; the paper derives the per-tuple
/// cost from this threshold (c ~ 1000/190 ms at H = 1).
double EstimateCapacityThreshold(double lo, double hi, double tol,
                                 SimTime duration, double capacity_rate,
                                 double headroom_true, uint64_t seed);

/// Sum of squared modeling errors for a candidate headroom H, given the
/// measured delays and queue sequence of a run (the Fig. 6/7 fitting
/// criterion; the best H in the paper is 0.97).
double HeadroomFitError(const std::vector<double>& measured_delay,
                        const std::vector<double>& queue, double c, double H);

}  // namespace ctrlshed

#endif  // CTRLSHED_SYSID_IDENTIFICATION_H_
