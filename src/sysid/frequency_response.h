#ifndef CTRLSHED_SYSID_FREQUENCY_RESPONSE_H_
#define CTRLSHED_SYSID_FREQUENCY_RESPONSE_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace ctrlshed {

/// One point of the measured plant frequency response.
struct FrequencyPoint {
  double freq_hz = 0.0;
  double gain = 0.0;        ///< |q(jw)| / |fin(jw)| measured on the engine.
  double phase_rad = 0.0;   ///< Phase of q relative to the input sine.
  double model_gain = 0.0;  ///< Integrator prediction T / |e^{jwT} - 1|.
};

/// Parameters of the frequency sweep.
struct FrequencySweepParams {
  std::vector<double> freqs_hz = {0.01, 0.02, 0.05, 0.1, 0.2};
  double amplitude = 60.0;     ///< Input sine amplitude, tuples/s.
  double capacity_rate = 190.0;
  double headroom = 0.97;
  SimTime sample_period = 1.0;
  double cycles = 8.0;         ///< Measured cycles per frequency point.
  double preload_tuples = 3000.0;  ///< Initial backlog keeping q > 0 so the
                                   ///< integrator never rectifies at zero.
  uint64_t seed = 5;
};

/// Drives the engine with fin(t) = capacity + A sin(2 pi f t) around a
/// preloaded backlog and extracts the gain/phase of the virtual queue at
/// each excitation frequency by single-bin correlation. The paper verifies
/// its integrator model in the time domain (Figs. 5-7); this is the
/// frequency-domain counterpart: the measured gain must follow the
/// integrator's 1/w roll-off (-20 dB/decade) with ~-90 degree phase.
std::vector<FrequencyPoint> MeasureFrequencyResponse(
    const FrequencySweepParams& params);

/// The discrete integrator's gain at frequency f (Hz) with sample period T:
/// |T / (e^{j 2 pi f T} - 1)|.
double IntegratorGain(double freq_hz, double sample_period);

}  // namespace ctrlshed

#endif  // CTRLSHED_SYSID_FREQUENCY_RESPONSE_H_
