#include "sysid/identification.h"

#include <cmath>

#include "common/macros.h"
#include "runner/experiment.h"

namespace ctrlshed {

ArrivalGroupedDelays::ArrivalGroupedDelays(SimTime period) : period_(period) {
  CS_CHECK_MSG(period_ > 0.0, "period must be positive");
}

void ArrivalGroupedDelays::OnDeparture(const Departure& d) {
  const size_t k = static_cast<size_t>(d.arrival_time / period_);
  if (k >= sum_.size()) {
    sum_.resize(k + 1, 0.0);
    count_.resize(k + 1, 0);
  }
  sum_[k] += d.depart_time - d.arrival_time;
  count_[k] += 1;
}

TimeSeries ArrivalGroupedDelays::Series(SimTime duration) const {
  TimeSeries out;
  const size_t n = static_cast<size_t>(duration / period_);
  double last = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (k < count_.size() && count_[k] > 0) {
      last = sum_[k] / static_cast<double>(count_[k]);
    }
    out.Push(static_cast<double>(k + 1) * period_, last);
  }
  return out;
}

StepResponse RunStepResponse(double rate, SimTime duration, SimTime step_at,
                             double capacity_rate, double headroom_true,
                             uint64_t seed) {
  ArrivalGroupedDelays grouper(1.0);

  ExperimentConfig config;
  config.method = Method::kNone;
  config.workload = WorkloadKind::kStep;
  config.duration = duration;
  config.step_at = step_at;
  config.step_low = 5.0;  // a trickle before the step, as in Fig. 5A
  config.step_high = rate;
  config.capacity_rate = capacity_rate;
  config.headroom_true = headroom_true;
  config.headroom_est = headroom_true;
  config.spacing = ArrivalSource::Spacing::kDeterministic;
  config.seed = seed;
  config.departure_observer = [&grouper](const Departure& d) {
    grouper.OnDeparture(d);
  };

  ExperimentResult r = RunExperiment(config);

  StepResponse resp;
  resp.rate = rate;
  resp.delay = grouper.Series(duration);
  for (const PeriodRecord& row : r.recorder.rows()) {
    resp.queue.Push(row.m.t, row.m.queue);
  }
  for (size_t k = 1; k < resp.delay.size(); ++k) {
    resp.delta_delay.push_back(resp.delay[k].value - resp.delay[k - 1].value);
  }
  return resp;
}

bool DelayDiverges(const TimeSeries& delay, SimTime step_at) {
  // Compare the mean delay shortly after the step with the mean over the
  // final quarter: a diverging (integrating) response keeps growing, a
  // stable one flattens out at a constant service delay.
  if (delay.size() < 8) return false;
  double early_sum = 0.0, late_sum = 0.0;
  size_t early_n = 0, late_n = 0;
  const size_t n = delay.size();
  for (size_t i = 0; i < n; ++i) {
    const Sample& s = delay[i];
    if (s.t <= step_at) continue;
    if (s.t <= step_at + (delay[n - 1].t - step_at) * 0.25) {
      early_sum += s.value;
      ++early_n;
    } else if (s.t >= step_at + (delay[n - 1].t - step_at) * 0.75) {
      late_sum += s.value;
      ++late_n;
    }
  }
  if (early_n == 0 || late_n == 0) return false;
  const double early = early_sum / static_cast<double>(early_n);
  const double late = late_sum / static_cast<double>(late_n);
  return late > 2.0 * early + 0.05;
}

double EstimateCapacityThreshold(double lo, double hi, double tol,
                                 SimTime duration, double capacity_rate,
                                 double headroom_true, uint64_t seed) {
  CS_CHECK_MSG(lo < hi && tol > 0.0, "invalid search interval");
  while (hi - lo > tol) {
    const double mid = (lo + hi) / 2.0;
    StepResponse resp =
        RunStepResponse(mid, duration, /*step_at=*/10.0, capacity_rate,
                        headroom_true, seed);
    if (DelayDiverges(resp.delay, 10.0)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double HeadroomFitError(const std::vector<double>& measured_delay,
                        const std::vector<double>& queue, double c, double H) {
  CS_CHECK_MSG(measured_delay.size() == queue.size(), "length mismatch");
  double sse = 0.0;
  double prev_q = 0.0;
  for (size_t k = 0; k < queue.size(); ++k) {
    const double model = (prev_q + 1.0) * c / H;
    const double err = measured_delay[k] - model;
    sse += err * err;
    prev_q = queue[k];
  }
  return sse;
}

}  // namespace ctrlshed
