#ifndef CTRLSHED_SYSID_INTEGRATOR_MODEL_H_
#define CTRLSHED_SYSID_INTEGRATOR_MODEL_H_

#include <vector>

namespace ctrlshed {

/// Parameters of the paper's dynamic DSMS model (Section 4.2):
/// an integrator with per-tuple cost c, headroom H and sampling period T.
struct ModelParams {
  double c = 0.0052631;  ///< Per-tuple cost, seconds (~190 tuples/s at H=1).
  double H = 0.97;       ///< Headroom factor.
  double T = 1.0;        ///< Sampling period, seconds.
};

/// Simulates the closed-form model against an input-rate sequence:
///   y(k) = (q(k-1) + 1) c / H                              (Eq. 2)
///   q(k) = max(0, q(k-1) + T (fin(k) - fout(k)))
/// where fout is the service rate H/c, limited by the available work.
/// Returns the y(k) sequence (same length as `fin`).
std::vector<double> SimulateIntegratorModel(const ModelParams& params,
                                            const std::vector<double>& fin);

/// Computes the model's delay estimate from a measured virtual-queue
/// sequence (Eq. 2 with the runtime-collected q(k), as in the paper's
/// verification experiments of Figs. 6-7):
///   y_model(k) = (q(k-1) + 1) c / H,  with q(-1) = 0.
std::vector<double> ModelDelayFromQueue(const std::vector<double>& q,
                                        double c, double H);

/// Bias-corrected variant: y(k) averages tuples arriving THROUGHOUT period
/// k, which see the queue evolve from q(k-1) to q(k); regressing on the
/// midpoint (q(k-1) + q(k)) / 2 removes the resulting half-period bias
/// that otherwise drags the fitted H a percent or two below the truth.
std::vector<double> ModelDelayFromQueueMidpoint(const std::vector<double>& q,
                                                double c, double H);

/// Sum of squared errors between `measured` delays and the midpoint-model
/// delays for candidate headroom H.
double HeadroomFitErrorMidpoint(const std::vector<double>& measured,
                                const std::vector<double>& q, double c,
                                double H);

/// Element-wise modeling error: measured - model. The two vectors must
/// have the same length.
std::vector<double> ModelingError(const std::vector<double>& measured,
                                  const std::vector<double>& model);

/// First-order ARX model  y(k) = a1 y(k-1) + b1 u(k-1)  fitted by least
/// squares from input/output records — identification WITHOUT assuming
/// the integrator structure. For the DSMS plant (u = net inflow rate,
/// y = virtual queue length) the fit should recover a1 ~ 1 (the
/// integrator pole) and b1 ~ T, which is how one validates the paper's
/// Eq. (3) from data alone.
struct ArxFit {
  double a1 = 0.0;      ///< Pole estimate.
  double b1 = 0.0;      ///< Input gain estimate.
  double rmse = 0.0;    ///< One-step-ahead prediction error.
  bool ok = false;      ///< False when the regression is degenerate.
};

ArxFit FitArxModel(const std::vector<double>& u, const std::vector<double>& y);

}  // namespace ctrlshed

#endif  // CTRLSHED_SYSID_INTEGRATOR_MODEL_H_
