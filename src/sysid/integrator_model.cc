#include "sysid/integrator_model.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

std::vector<double> SimulateIntegratorModel(const ModelParams& params,
                                            const std::vector<double>& fin) {
  CS_CHECK_MSG(params.c > 0.0 && params.H > 0.0 && params.T > 0.0,
               "model parameters must be positive");
  std::vector<double> y(fin.size(), 0.0);
  const double service = params.H / params.c;  // tuples/s
  double q = 0.0;
  for (size_t k = 0; k < fin.size(); ++k) {
    y[k] = (q + 1.0) * params.c / params.H;
    const double available = q / params.T + fin[k];  // rate-equivalent work
    const double fout = std::min(service, available);
    q = std::max(0.0, q + params.T * (fin[k] - fout));
  }
  return y;
}

std::vector<double> ModelDelayFromQueue(const std::vector<double>& q,
                                        double c, double H) {
  CS_CHECK_MSG(c > 0.0 && H > 0.0, "c and H must be positive");
  std::vector<double> y(q.size(), 0.0);
  double prev_q = 0.0;
  for (size_t k = 0; k < q.size(); ++k) {
    y[k] = (prev_q + 1.0) * c / H;
    prev_q = q[k];
  }
  return y;
}

std::vector<double> ModelDelayFromQueueMidpoint(const std::vector<double>& q,
                                                double c, double H) {
  CS_CHECK_MSG(c > 0.0 && H > 0.0, "c and H must be positive");
  std::vector<double> y(q.size(), 0.0);
  double prev_q = 0.0;
  for (size_t k = 0; k < q.size(); ++k) {
    y[k] = ((prev_q + q[k]) / 2.0 + 1.0) * c / H;
    prev_q = q[k];
  }
  return y;
}

double HeadroomFitErrorMidpoint(const std::vector<double>& measured,
                                const std::vector<double>& q, double c,
                                double H) {
  CS_CHECK_MSG(measured.size() == q.size(), "length mismatch");
  const std::vector<double> model = ModelDelayFromQueueMidpoint(q, c, H);
  double sse = 0.0;
  for (size_t k = 0; k < q.size(); ++k) {
    const double err = measured[k] - model[k];
    sse += err * err;
  }
  return sse;
}

ArxFit FitArxModel(const std::vector<double>& u, const std::vector<double>& y) {
  ArxFit fit;
  CS_CHECK_MSG(u.size() == y.size(), "length mismatch");
  if (y.size() < 4) return fit;

  // Normal equations for y(k) = a1 y(k-1) + b1 u(k-1), k = 1..n-1.
  double syy = 0.0, suu = 0.0, syu = 0.0, sy_y = 0.0, su_y = 0.0;
  const size_t n = y.size();
  for (size_t k = 1; k < n; ++k) {
    const double yp = y[k - 1], up = u[k - 1], yk = y[k];
    syy += yp * yp;
    suu += up * up;
    syu += yp * up;
    sy_y += yp * yk;
    su_y += up * yk;
  }
  const double det = syy * suu - syu * syu;
  if (std::abs(det) < 1e-9 * (syy * suu + 1e-12)) return fit;

  fit.a1 = (sy_y * suu - su_y * syu) / det;
  fit.b1 = (su_y * syy - sy_y * syu) / det;

  double sse = 0.0;
  for (size_t k = 1; k < n; ++k) {
    const double pred = fit.a1 * y[k - 1] + fit.b1 * u[k - 1];
    sse += (y[k] - pred) * (y[k] - pred);
  }
  fit.rmse = std::sqrt(sse / static_cast<double>(n - 1));
  fit.ok = true;
  return fit;
}

std::vector<double> ModelingError(const std::vector<double>& measured,
                                  const std::vector<double>& model) {
  CS_CHECK_MSG(measured.size() == model.size(), "length mismatch");
  std::vector<double> err(measured.size());
  for (size_t i = 0; i < measured.size(); ++i) err[i] = measured[i] - model[i];
  return err;
}

}  // namespace ctrlshed
