#ifndef CTRLSHED_SIM_EVENT_QUEUE_H_
#define CTRLSHED_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace ctrlshed {

/// A single scheduled callback.
struct Event {
  SimTime time = 0.0;
  uint64_t seq = 0;  // tie-breaker: FIFO among equal-time events
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, insertion sequence). The sequence
/// tie-breaker makes simulations deterministic when several events share a
/// timestamp.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` at absolute time `t`.
  void Push(SimTime t, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest event; must not be called when empty.
  SimTime NextTime() const;

  /// Removes and returns the earliest event; must not be called when empty.
  Event Pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SIM_EVENT_QUEUE_H_
