#include "sim/event_queue.h"

#include <utility>

#include "common/macros.h"

namespace ctrlshed {

void EventQueue::Push(SimTime t, std::function<void()> action) {
  heap_.push(Event{t, next_seq_++, std::move(action)});
}

SimTime EventQueue::NextTime() const {
  CS_CHECK_MSG(!heap_.empty(), "NextTime on empty queue");
  return heap_.top().time;
}

Event EventQueue::Pop() {
  CS_CHECK_MSG(!heap_.empty(), "Pop on empty queue");
  // priority_queue::top is const; moving requires a copy here. Events are
  // popped once per schedule so the copy of the std::function is acceptable.
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace ctrlshed
