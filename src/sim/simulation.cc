#include "sim/simulation.h"

#include <memory>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

void Simulation::Schedule(SimTime t, std::function<void()> action) {
  CS_CHECK_MSG(t >= now_, "cannot schedule into the past");
  queue_.Push(t, std::move(action));
}

void Simulation::ScheduleEvery(SimTime first, SimTime period,
                               std::function<bool(SimTime)> action) {
  CS_CHECK_MSG(period > 0.0, "period must be positive");
  auto shared = std::make_shared<std::function<bool(SimTime)>>(std::move(action));
  // Self-rescheduling wrapper. The recursive lambda owns the user callback
  // via shared_ptr so each rescheduled copy stays cheap.
  std::function<void()> tick = [this, shared, period]() {
    if ((*shared)(now_)) {
      SimTime next = now_ + period;
      ScheduleEvery(next, period, *shared);
    }
  };
  queue_.Push(first, std::move(tick));
}

void Simulation::AttachProcess(Process* p) {
  CS_CHECK(p != nullptr);
  processes_.push_back(p);
}

void Simulation::Run(SimTime end) {
  while (!queue_.empty() && queue_.NextTime() <= end) {
    Event e = queue_.Pop();
    for (Process* p : processes_) p->AdvanceTo(e.time);
    now_ = e.time;
    e.action();
  }
  for (Process* p : processes_) p->AdvanceTo(end);
  if (end > now_) now_ = end;
}

}  // namespace ctrlshed
