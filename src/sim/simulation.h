#ifndef CTRLSHED_SIM_SIMULATION_H_
#define CTRLSHED_SIM_SIMULATION_H_

#include <functional>
#include <vector>

#include "common/sim_time.h"
#include "sim/event_queue.h"

namespace ctrlshed {

/// A component with its own continuous activity (e.g. the query engine's
/// CPU). Before the simulation dispatches an event at time `t`, every
/// attached process is advanced to `t` so that continuous work and discrete
/// events interleave correctly.
class Process {
 public:
  virtual ~Process() = default;

  /// Performs all of the process's work up to (approximately) time `t`.
  virtual void AdvanceTo(SimTime t) = 0;
};

/// Discrete-event simulation driver: a virtual clock, an event queue, and a
/// set of continuous processes.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `action` at absolute virtual time `t` (>= now).
  void Schedule(SimTime t, std::function<void()> action);

  /// Schedules `action(t)` at `first`, then every `period` as long as the
  /// callback returns true.
  void ScheduleEvery(SimTime first, SimTime period,
                     std::function<bool(SimTime)> action);

  /// Attaches a continuous process; the pointer must outlive the simulation.
  void AttachProcess(Process* p);

  /// Runs events in timestamp order until the queue is exhausted or the
  /// next event is past `end`; then advances time and processes to `end`.
  void Run(SimTime end);

 private:
  SimTime now_ = 0.0;
  EventQueue queue_;
  std::vector<Process*> processes_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SIM_SIMULATION_H_
