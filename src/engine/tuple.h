#ifndef CTRLSHED_ENGINE_TUPLE_H_
#define CTRLSHED_ENGINE_TUPLE_H_

#include <cstdint>

#include "common/sim_time.h"

namespace ctrlshed {

/// Lineage id assigned by the engine. Tuples emitted by pass-through
/// operators (filter, map, union) keep their input's lineage; operators that
/// create new data (aggregates, joins) emit tuples with `kPendingLineage`
/// and the engine assigns a fresh lineage at enqueue time.
using LineageId = uint64_t;
inline constexpr LineageId kPendingLineage = 0;

/// A data item flowing through the query network.
///
/// The payload is a pair of doubles: `value` drives predicates and
/// aggregations (workload generators draw it from U[0,1] so that filter
/// selectivities are fixed, as in the paper's identification setup) and
/// `aux` carries secondary data (e.g. a join key).
struct Tuple {
  LineageId lineage = kPendingLineage;
  int source = 0;            ///< Index of the stream this tuple entered from.
  SimTime arrival_time = 0;  ///< Arrival at the engine's network buffer.
  double value = 0.0;
  double aux = 0.0;
  int port = 0;              ///< Input port at the operator whose queue holds it.
};

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_TUPLE_H_
