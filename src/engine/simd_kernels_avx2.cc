// AVX2 implementations of the whole-chunk kernels. This TU is compiled
// with -mavx2 (see src/CMakeLists.txt) and only when CTRLSHED_SIMD is auto
// or avx2 on an x86-64 host; nothing outside the dispatch table in
// simd_kernels.cc may call into it directly.

#include "engine/simd_kernels.h"

#if CTRLSHED_HAVE_AVX2

#include <immintrin.h>

namespace ctrlshed {
namespace kernels {
namespace avx2 {

namespace {

// 64-bit low-half product — AVX2 has no vpmullq, so build it from 32-bit
// multiplies: lo*lo + ((lo*hi + hi*lo) << 32).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i bswap = _mm256_shuffle_epi32(b, 0xB1);   // b hi/lo swapped
  const __m256i prodlh = _mm256_mullo_epi32(a, bswap);   // cross products
  const __m256i prodlh2 = _mm256_hadd_epi32(prodlh, _mm256_setzero_si256());
  const __m256i prodlh3 = _mm256_shuffle_epi32(prodlh2, 0x73);  // << 32
  const __m256i prodll = _mm256_mul_epu32(a, b);         // lo*lo, 64-bit
  return _mm256_add_epi64(prodll, prodlh3);
}

inline __m256i Set1U64(uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

}  // namespace

void FilterMask(const double* value, size_t n, uint64_t salt,
                uint64_t pass_bound, uint8_t* pass) {
  const __m256i vsalt = Set1U64(salt);
  const __m256i golden = Set1U64(0x9e3779b97f4a7c15ULL);
  const __m256i mix1 = Set1U64(0xbf58476d1ce4e5b9ULL);
  const __m256i mix2 = Set1U64(0x94d049bb133111ebULL);
  const __m256i bound = Set1U64(pass_bound);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // SplitMix64 finalizer on the raw payload bits, 4 lanes at a time —
    // exactly HashPayload() in simd_kernels.h.
    __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(value + i));
    x = _mm256_xor_si256(x, vsalt);
    x = _mm256_add_epi64(x, golden);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
    x = Mul64(x, mix1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
    x = Mul64(x, mix2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    x = _mm256_srli_epi64(x, 11);  // k in [0, 2^53)
    // k and bound both fit far below 2^63, so the signed compare is exact.
    const __m256i lt = _mm256_cmpgt_epi64(bound, x);
    const int m = _mm256_movemask_pd(_mm256_castsi256_pd(lt));
    pass[i + 0] = static_cast<uint8_t>(m & 1);
    pass[i + 1] = static_cast<uint8_t>((m >> 1) & 1);
    pass[i + 2] = static_cast<uint8_t>((m >> 2) & 1);
    pass[i + 3] = static_cast<uint8_t>((m >> 3) & 1);
  }
  for (; i < n; ++i) {
    pass[i] = (HashPayload(value[i], salt) >> 11) < pass_bound ? 1 : 0;
  }
}

void ShedMask(const double* u, size_t n, double drop_p, uint8_t* admit) {
  const __m256d p = _mm256_set1_pd(drop_p);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Ordered < matches the scalar `u < p` (u is a Uniform() draw, never
    // NaN, but ordered semantics keep the paths identical regardless).
    const __m256d lt = _mm256_cmp_pd(_mm256_loadu_pd(u + i), p, _CMP_LT_OQ);
    const int m = _mm256_movemask_pd(lt);
    admit[i + 0] = static_cast<uint8_t>(~m & 1);
    admit[i + 1] = static_cast<uint8_t>((~m >> 1) & 1);
    admit[i + 2] = static_cast<uint8_t>((~m >> 2) & 1);
    admit[i + 3] = static_cast<uint8_t>((~m >> 3) & 1);
  }
  for (; i < n; ++i) {
    admit[i] = u[i] < drop_p ? 0 : 1;
  }
}

}  // namespace avx2
}  // namespace kernels
}  // namespace ctrlshed

#endif  // CTRLSHED_HAVE_AVX2
