#ifndef CTRLSHED_ENGINE_LINEAGE_TABLE_H_
#define CTRLSHED_ENGINE_LINEAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "engine/tuple.h"
#include "common/macros.h"

namespace ctrlshed {

/// Slab-indexed lineage refcount table.
///
/// The seed tracked lineages in a std::unordered_map<LineageId,
/// LineageState> plus a std::unordered_set shed-taint — two hash probes on
/// every enqueue and every release, on the exact path every tuple crosses.
/// This table replaces both with a flat slab: a LineageId is
/// (slot_index << 32) | generation, so lookup is one bounds-checked index,
/// the shed taint is a bit in the slot, and freed slots are recycled
/// through an intrusive free list. The generation tag (never 0, so no id
/// collides with kPendingLineage) makes stale ids detectable: releasing a
/// recycled slot with an old generation is a hard CS_CHECK failure rather
/// than silent corruption.
class LineageTable {
 public:
  /// Creates a lineage with zero live instances. `derived` marks tuples
  /// materialized inside the network (they don't count toward
  /// departed/shed lineage totals).
  LineageId Allocate(bool derived) {
    uint32_t index;
    if (free_head_ != kNil) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
    } else {
      index = static_cast<uint32_t>(slots_.size());
      CS_CHECK_MSG(slots_.size() < kNil, "lineage slab exhausted");
      slots_.emplace_back();
    }
    Slot& s = slots_[index];
    s.live_instances = 0;
    s.derived = derived;
    s.shed = false;
    ++live_;
    return (static_cast<LineageId>(index) << 32) | s.generation;
  }

  /// Adds one live tuple instance to the lineage.
  void AddInstance(LineageId id) { ++Checked(id).live_instances; }

  /// Fate of a lineage whose last instance was just released.
  struct Released {
    bool last = false;     ///< This was the final live instance.
    bool tainted = false;  ///< Some instance of the lineage was shed.
    bool derived = false;  ///< The lineage was network-materialized.
  };

  /// Drops one live instance; `shed` additionally taints the lineage.
  /// When the last instance goes, the slot is recycled (its generation
  /// bumped so the old id goes stale) and the lineage's fate is returned.
  Released Release(LineageId id, bool shed) {
    Slot& s = Checked(id);
    --s.live_instances;
    CS_CHECK_MSG(s.live_instances >= 0, "lineage refcount underflow");
    if (shed) s.shed = true;
    Released r;
    if (s.live_instances > 0) return r;
    r.last = true;
    r.tainted = s.shed;
    r.derived = s.derived;
    if (++s.generation == 0) s.generation = 1;  // Keep ids != kPendingLineage.
    const auto index = static_cast<uint32_t>(id >> 32);
    s.next_free = free_head_;
    free_head_ = index;
    --live_;
    return r;
  }

  /// Lineages currently allocated (not yet fully released).
  size_t live_lineages() const { return live_; }
  /// Slab high-water mark in slots.
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    int32_t live_instances = 0;
    uint32_t generation = 1;  ///< Never 0: (index<<32)|gen can't be 0.
    bool derived = false;
    bool shed = false;
    uint32_t next_free = kNil;
  };
  static constexpr uint32_t kNil = 0xffffffffu;

  Slot& Checked(LineageId id) {
    const auto index = static_cast<uint32_t>(id >> 32);
    const auto generation = static_cast<uint32_t>(id);
    CS_CHECK_MSG(index < slots_.size() && slots_[index].generation == generation,
                 "unknown lineage released");
    return slots_[index];
  }

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNil;
  size_t live_ = 0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_LINEAGE_TABLE_H_
