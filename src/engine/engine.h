#ifndef CTRLSHED_ENGINE_ENGINE_H_
#define CTRLSHED_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "common/rng.h"
#include "common/sim_time.h"
#include "engine/lineage_table.h"
#include "engine/query_network.h"
#include "engine/scheduler.h"
#include "engine/tuple.h"
#include "engine/tuple_queue.h"
#include "sim/simulation.h"

namespace ctrlshed {

/// Time-varying multiplier applied to every operator's nominal cost. The
/// paper simulates per-tuple cost variations (Fig. 14) by changing the
/// effective processing cost over time; a multiplier of 1 keeps nominal
/// costs.
using CostMultiplierFn = std::function<double(SimTime)>;

/// How a tuple's lineage left the query network.
enum class DepartureKind {
  kOutput,    ///< Reached a sink (operator without downstream that emitted).
  kFiltered,  ///< Discarded by query semantics (filter predicate, absorbed
              ///< into a window, or no join match) — still a normal
              ///< departure in the paper's delay definition.
};

/// Per-departure record delivered to the departure callback.
struct Departure {
  SimTime arrival_time = 0.0;
  SimTime depart_time = 0.0;
  int source = 0;
  DepartureKind kind = DepartureKind::kOutput;
  bool derived = false;  ///< Lineage born inside the network (aggregate/join output).
};

using DepartureCallback = std::function<void(const Departure&)>;

/// Per-invocation observer hooks, the seam the telemetry layer plugs into
/// without the engine linking against it (telemetry already depends on the
/// engine). All callbacks run on the engine's thread, inline in the pump —
/// implementations must be cheap and must never block.
///
/// Calling convention: the engine emits OnInvocationStart once per *batch*
/// (a run of up to quantum back-to-back invocations of one operator; the
/// default quantum of 1 makes a batch a single invocation) followed by one
/// OnInvocationBatch when the run ends. Observers that only care about
/// per-invocation granularity can override OnInvocationEnd and rely on the
/// default OnInvocationBatch fan-out.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  /// A batch of invocations of `op` is about to run (front of its queue).
  virtual void OnInvocationStart(const OperatorBase& op) = 0;
  /// One invocation finished; `cost_seconds` is the effective CPU cost
  /// charged (nominal cost x multiplier). Only called via the default
  /// OnInvocationBatch fan-out.
  virtual void OnInvocationEnd(const OperatorBase& op, double cost_seconds) {
    (void)op;
    (void)cost_seconds;
  }
  /// A batch of `n` invocations of `op` finished, charging `cost_seconds`
  /// of total effective CPU cost. Default: fan out to OnInvocationEnd with
  /// the mean per-invocation cost (exact at n == 1, the seed path).
  virtual void OnInvocationBatch(const OperatorBase& op, uint64_t n,
                                 double cost_seconds) {
    for (uint64_t i = 0; i < n; ++i) {
      OnInvocationEnd(op, cost_seconds / static_cast<double>(n));
    }
  }
  /// In-network shedding dropped one queued tuple from `op`'s queue.
  virtual void OnQueueDrop(const OperatorBase& op) = 0;
};

/// Monotonic counters exposed to the monitor. All "lineage" counters count
/// source tuples (or derived tuples) once, however many copies branched
/// paths create.
struct EngineCounters {
  uint64_t admitted = 0;         ///< Source tuples accepted into the network.
  uint64_t departed = 0;         ///< Lineages fully departed (output or filtered).
  uint64_t shed_lineages = 0;    ///< Lineages removed by in-network shedding.
  uint64_t invocations = 0;      ///< Operator executions performed.
  double busy_seconds = 0.0;     ///< Cumulative CPU work (cost x multiplier).
  double drained_base_load = 0.0;  ///< Cumulative static load removed from queues.
  double shed_base_load = 0.0;     ///< Static load removed by in-network shedding.
};

/// The Borealis-like query engine: the *plant* of the control loop.
///
/// The engine runs on the simulation's virtual clock as an attached
/// Process. A fraction `headroom` of the CPU is available for query
/// processing (the paper's H); executing an operator with effective cost c
/// occupies c / H of virtual wall time. Scheduling is round-robin over
/// operators with non-empty queues, FIFO within each queue, no tuple
/// priorities — exactly the policy the paper models. With a scheduler
/// quantum > 1 the engine drains up to that many invocations per operator
/// visit (Aurora-style train scheduling) before re-selecting; the default
/// quantum of 1 reproduces the paper's policy bit-for-bit.
///
/// Service is non-preemptive: an invocation that starts before an event
/// timestamp may finish slightly after it, as on a real engine.
///
/// Allocation discipline: operator queues are pooled TupleQueues backed by
/// the engine's chunk pool and lineages live in a slab table, so steady
/// state (queue depths at or below their high-water mark) performs zero
/// heap allocations on the inject/execute path.
class Engine : public Process {
 public:
  /// `network` must be finalized and outlive the engine. `headroom` is the
  /// TRUE fraction of CPU the engine gets (controllers carry their own,
  /// possibly wrong, estimate of it). `scheduler` defaults to Borealis'
  /// round-robin policy when null. The constructor binds the network's
  /// operator queues to this engine's chunk pool; at most one live Engine
  /// per network.
  Engine(QueryNetwork* network, double headroom,
         std::unique_ptr<SchedulerPolicy> scheduler = nullptr);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs the time-varying cost multiplier (default: constant 1).
  void SetCostMultiplier(CostMultiplierFn fn) { cost_multiplier_ = std::move(fn); }

  /// Installs the per-departure observer.
  void SetDepartureCallback(DepartureCallback cb) { on_departure_ = std::move(cb); }

  /// Installs the per-invocation observer (null to remove). Not owned;
  /// must outlive the engine's use of it.
  void SetObserver(EngineObserver* observer) { observer_ = observer; }

  /// Enables/disables the columnar fast path (default on). The columnar
  /// executor is engaged per batch when the scheduler quantum is at least
  /// kColumnarMinQuantum and the operator is vectorizable; it replicates
  /// the row path's floating-point operation order exactly, so results
  /// (clocks, counters, departures) are bit-identical either way — the
  /// differential tests assert this by toggling the switch.
  void SetColumnarEnabled(bool enabled) { columnar_enabled_ = enabled; }
  bool columnar_enabled() const { return columnar_enabled_; }

  /// Quantum below which the columnar path stays off: mask/compaction
  /// setup only pays for itself on runs of a few tuples or more, and the
  /// seed's quantum-1 configuration must keep its row-path performance.
  static constexpr size_t kColumnarMinQuantum = 4;

  /// Admits one source tuple into the network at time `now` (>= the
  /// engine's current clock position is not required; arrival timestamps
  /// come from the simulation). `t.source` selects the entry operators.
  void Inject(Tuple t, SimTime now);

  /// Admits `n` tuples, advancing the engine to each tuple's arrival time
  /// before injecting it — the arrival-ordered replay loop the rt pump
  /// runs, as one call. `tuples` must be sorted by arrival_time.
  void InjectBatch(const Tuple* tuples, size_t n);

  /// Process (continuous work) interface: executes queued operator
  /// invocations until the virtual CPU reaches `t` or all queues are empty.
  void AdvanceTo(SimTime t) override;

  /// Victim-queue selection policy for in-network shedding.
  enum class QueueVictimPolicy {
    kRandom,      ///< The paper's shedder: random locations.
    kMostCostly,  ///< LSRM-flavored: drop where each tuple frees the most
                  ///< remaining load (fewest tuples lost per load shed).
  };

  /// Removes queued tuples from non-empty operator queues (newest first
  /// within the victim queue) until at least `target_base_load` seconds of
  /// static load have been removed or the network is empty. Returns the
  /// load actually removed. This is the in-network shedding actuator of
  /// Section 4.5.2.
  double ShedFromQueues(double target_base_load, Rng& rng,
                        QueueVictimPolicy policy = QueueVictimPolicy::kRandom);

  // --- Observation interface (the paper's monitor reads these) -----------

  const EngineCounters& counters() const { return counters_; }

  /// Total tuples currently sitting in operator queues.
  uint64_t QueuedTuples() const { return queued_tuples_; }

  /// Outstanding static load: sum over queued tuples of their expected
  /// remaining cost at nominal operator costs (seconds).
  double OutstandingBaseLoad() const { return outstanding_base_load_; }

  /// Outstanding load expressed in entry-tuple equivalents — the "virtual
  /// queue length" q of the paper's model (Eq. 2).
  double VirtualQueueLength() const;

  /// Expected per-tuple cost at nominal operator costs (model constant c).
  double NominalEntryCost() const { return nominal_entry_cost_; }

  /// Effective cost multiplier at time t.
  double CostMultiplierAt(SimTime t) const;

  /// Position of the engine's virtual CPU clock.
  SimTime cpu_clock() const { return clock_; }

  double headroom() const { return headroom_; }

  const QueryNetwork& network() const { return *network_; }
  const SchedulerPolicy& scheduler() const { return *scheduler_; }
  SchedulerPolicy& scheduler() { return *scheduler_; }

  /// The engine's chunk pool (benchmarks assert its high-water mark
  /// stabilizes — zero steady-state allocations).
  const TupleChunkPool& chunk_pool() const { return chunk_pool_; }

 private:
  /// Executes up to `quantum` back-to-back invocations of `op`, stopping
  /// early when its queue drains or the virtual clock reaches `limit`.
  /// At quantum == 1 this is exactly the seed's single-invocation step,
  /// including floating-point operation order.
  void ExecuteBatch(OperatorBase* op, size_t quantum, SimTime limit);

  /// True when `op` can run on the columnar executor at this quantum.
  bool CanRunColumnar(const OperatorBase& op, size_t quantum) const;

  /// Whole-run columnar twin of ExecuteBatch (engine/columnar.cc):
  /// vectorized predicate masks and lane compaction around a scalar
  /// bookkeeping loop that preserves the row path's FP operation order.
  void ExecuteBatchColumnar(OperatorBase* op, size_t quantum, SimTime limit);

  /// Decrements the lineage refcount; fires the departure callback when the
  /// lineage is gone (unless it was shed).
  void ReleaseLineage(const Tuple& t, SimTime depart_time, DepartureKind kind,
                      bool shed);

  QueryNetwork* network_;
  double headroom_;
  std::unique_ptr<SchedulerPolicy> scheduler_;
  CostMultiplierFn cost_multiplier_;
  DepartureCallback on_departure_;
  EngineObserver* observer_ = nullptr;

  SimTime clock_ = 0.0;

  uint64_t queued_tuples_ = 0;
  double outstanding_base_load_ = 0.0;
  double nominal_entry_cost_ = 0.0;
  LineageTable lineages_;
  TupleChunkPool chunk_pool_;

  EngineCounters counters_;

  // --- Columnar executor state (engine/columnar.cc) ----------------------
  bool columnar_enabled_ = true;
  /// Per-run predicate mask and survivor-compaction staging, sized to one
  /// chunk (a run never spans chunks). Engine-owned so the hot path never
  /// touches the stack red zone or the allocator.
  struct ColumnarScratch {
    alignas(64) uint8_t mask[TupleChunk::kTuples];
    alignas(64) double value[TupleChunk::kTuples];
    alignas(64) double aux[TupleChunk::kTuples];
    alignas(64) SimTime arrival_time[TupleChunk::kTuples];
    alignas(64) LineageId lineage[TupleChunk::kTuples];
    alignas(64) int32_t source[TupleChunk::kTuples];
  };
  ColumnarScratch scratch_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_ENGINE_H_
