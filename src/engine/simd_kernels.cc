#include "engine/simd_kernels.h"

#include <cstdlib>
#include <cstring>

namespace ctrlshed {
namespace kernels {

namespace scalar {

void FilterMask(const double* value, size_t n, uint64_t salt,
                uint64_t pass_bound, uint8_t* pass) {
  for (size_t i = 0; i < n; ++i) {
    pass[i] = (HashPayload(value[i], salt) >> 11) < pass_bound ? 1 : 0;
  }
}

void ShedMask(const double* u, size_t n, double drop_p, uint8_t* admit) {
  for (size_t i = 0; i < n; ++i) {
    admit[i] = u[i] < drop_p ? 0 : 1;
  }
}

}  // namespace scalar

namespace {

SimdMode ResolveMode() {
#if CTRLSHED_HAVE_AVX2
#if defined(CTRLSHED_SIMD_FORCE_AVX2)
  return SimdMode::kAvx2;
#else
  // auto build: env override first, then cpuid.
  if (const char* env = std::getenv("CTRLSHED_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return SimdMode::kScalar;
    if (std::strcmp(env, "avx2") == 0) return SimdMode::kAvx2;
  }
  return __builtin_cpu_supports("avx2") ? SimdMode::kAvx2 : SimdMode::kScalar;
#endif
#else
  return SimdMode::kScalar;
#endif
}

KernelTable ResolveTable() {
  const SimdMode mode = ResolveMode();
#if CTRLSHED_HAVE_AVX2
  if (mode == SimdMode::kAvx2) {
    return KernelTable{&avx2::FilterMask, &avx2::ShedMask, mode};
  }
#endif
  return KernelTable{&scalar::FilterMask, &scalar::ShedMask, mode};
}

}  // namespace

SimdMode ActiveSimdMode() { return Kernels().mode; }

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable& Kernels() {
  static const KernelTable table = ResolveTable();
  return table;
}

}  // namespace kernels
}  // namespace ctrlshed
