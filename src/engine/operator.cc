#include "engine/operator.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "engine/simd_kernels.h"

namespace ctrlshed {

OperatorBase::OperatorBase(std::string name, double cost_seconds)
    : name_(std::move(name)), cost_(cost_seconds) {
  CS_CHECK_MSG(cost_ >= 0.0, "operator cost must be non-negative");
}

void OperatorBase::ConnectTo(OperatorBase* op, int port) {
  CS_CHECK(op != nullptr);
  CS_CHECK_MSG(op != this, "operator cannot feed itself");
  downstream_.push_back(Downstream{op, port});
}

FilterOp::FilterOp(std::string name, double cost_seconds, double threshold)
    : OperatorBase(std::move(name), cost_seconds), threshold_(threshold) {
  CS_CHECK_MSG(threshold_ >= 0.0 && threshold_ <= 1.0,
               "filter threshold must be in [0,1]");
}

// The pass decision is a SplitMix64 hash of (payload bits, operator id),
// uniform in [0,1) and independent across operators. Using a hash of the
// payload rather than the raw value keeps the pass decisions of successive
// filters uncorrelated, so a chain's selectivity is the product of the
// individual selectivities — the property the static load estimates (and
// the paper's identification setup) rely on. The hash lives in
// engine/simd_kernels.h so the columnar filter kernels share it.
void FilterOp::Process(const Tuple& in, SimTime /*now*/, const EmitFn& emit) {
  if (kernels::HashToUnit(in.value, id()) < threshold_) emit(in);
}

MapOp::MapOp(std::string name, double cost_seconds, MapFn fn)
    : OperatorBase(std::move(name), cost_seconds), fn_(std::move(fn)) {}

void MapOp::Process(const Tuple& in, SimTime /*now*/, const EmitFn& emit) {
  Tuple out = in;
  if (fn_) fn_(out);
  emit(out);
}

UnionOp::UnionOp(std::string name, double cost_seconds)
    : OperatorBase(std::move(name), cost_seconds) {}

void UnionOp::Process(const Tuple& in, SimTime /*now*/, const EmitFn& emit) {
  emit(in);
}

WindowAggregateOp::WindowAggregateOp(std::string name, double cost_seconds,
                                     int window_size, Kind kind)
    : OperatorBase(std::move(name), cost_seconds),
      window_size_(window_size),
      kind_(kind) {
  CS_CHECK_MSG(window_size_ > 0, "window size must be positive");
}

double WindowAggregateOp::WindowValue(const WindowState& s) const {
  switch (kind_) {
    case Kind::kMean:
      return s.acc / window_size_;
    case Kind::kSum:
      return s.acc;
    case Kind::kMax:
      return s.max;
    case Kind::kCount:
      return static_cast<double>(window_size_);
  }
  return 0.0;
}

void WindowAggregateOp::Process(const Tuple& in, SimTime /*now*/,
                                const EmitFn& emit) {
  if (count_ == 0) {
    acc_ = 0.0;
    max_ = in.value;
  }
  acc_ += in.value;
  max_ = std::max(max_, in.value);
  ++count_;
  if (count_ < window_size_) return;

  Tuple out = in;  // inherits arrival time of the window-closing tuple
  out.lineage = kPendingLineage;
  out.value = WindowValue({count_, acc_, max_});
  count_ = 0;
  emit(out);
}

TimeWindowAggregateOp::TimeWindowAggregateOp(std::string name,
                                             double cost_seconds,
                                             SimTime window_seconds,
                                             double expected_selectivity,
                                             WindowAggregateOp::Kind kind)
    : OperatorBase(std::move(name), cost_seconds),
      window_seconds_(window_seconds),
      expected_selectivity_(expected_selectivity),
      kind_(kind) {
  CS_CHECK_MSG(window_seconds_ > 0.0, "window must be positive");
  CS_CHECK_MSG(expected_selectivity_ > 0.0 && expected_selectivity_ <= 1.0,
               "expected selectivity must be in (0,1]");
}

void TimeWindowAggregateOp::EmitWindow(const Tuple& trigger,
                                       const EmitFn& emit) {
  if (count_ == 0) return;
  Tuple out = trigger;
  out.lineage = kPendingLineage;
  switch (kind_) {
    case WindowAggregateOp::Kind::kMean:
      out.value = acc_ / count_;
      break;
    case WindowAggregateOp::Kind::kSum:
      out.value = acc_;
      break;
    case WindowAggregateOp::Kind::kMax:
      out.value = max_;
      break;
    case WindowAggregateOp::Kind::kCount:
      out.value = static_cast<double>(count_);
      break;
  }
  count_ = 0;
  acc_ = 0.0;
  max_ = 0.0;
  emit(out);
}

void TimeWindowAggregateOp::Process(const Tuple& in, SimTime /*now*/,
                                    const EmitFn& emit) {
  // Windows are keyed by ARRIVAL time so results are deterministic under
  // any scheduling; a tuple landing in a new window closes the previous.
  const int64_t w = static_cast<int64_t>(in.arrival_time / window_seconds_);
  if (w != current_window_) {
    EmitWindow(in, emit);
    current_window_ = w;
  }
  if (count_ == 0) max_ = in.value;
  acc_ += in.value;
  max_ = std::max(max_, in.value);
  ++count_;
}

SplitOp::SplitOp(std::string name, double cost_seconds)
    : OperatorBase(std::move(name), cost_seconds) {}

void SplitOp::Process(const Tuple& in, SimTime /*now*/, const EmitFn& emit) {
  emit(in);
}

SlidingJoinOp::SlidingJoinOp(std::string name, double cost_seconds,
                             SimTime window_seconds, double band,
                             double expected_selectivity)
    : OperatorBase(std::move(name), cost_seconds),
      window_seconds_(window_seconds),
      band_(band),
      expected_selectivity_(expected_selectivity) {
  CS_CHECK_MSG(window_seconds_ > 0.0, "join window must be positive");
  CS_CHECK_MSG(band_ >= 0.0, "join band must be non-negative");
}

size_t SlidingJoinOp::WindowSize(int port) const {
  CS_CHECK(port == 0 || port == 1);
  return windows_[port].size();
}

void SlidingJoinOp::Evict(std::deque<Entry>& window, SimTime now) {
  while (!window.empty() && window.front().t < now - window_seconds_) {
    window.pop_front();
  }
}

void SlidingJoinOp::Process(const Tuple& in, SimTime now, const EmitFn& emit) {
  CS_CHECK_MSG(in.port == 0 || in.port == 1, "join has exactly two ports");
  const int mine = in.port;
  const int other = 1 - mine;
  Evict(windows_[mine], now);
  Evict(windows_[other], now);

  for (const Entry& e : windows_[other]) {
    if (std::abs(e.key - in.aux) <= band_) {
      Tuple out = in;
      out.lineage = kPendingLineage;
      out.value = (in.value + e.value) / 2.0;
      out.port = 0;
      emit(out);
    }
  }
  windows_[mine].push_back(Entry{now, in.aux, in.value});
}

}  // namespace ctrlshed
