// The columnar twin of Engine::ExecuteBatch: executes whole lane runs of a
// chunk with vectorized predicate masks and lane compaction, around a
// scalar bookkeeping loop that replicates the row path's floating-point
// operation order EXACTLY (clock advance, busy/drained accounting,
// outstanding-load increments all happen per tuple, in the same sequence).
// Results — clocks, counters, queue contents, departure streams — are
// therefore bit-identical to the row path at every quantum, which is what
// lets the differential tests EXPECT_EQ entire timelines.
//
// Where the speed comes from:
//  - filter pass decisions for a run are one vectorized kernel call
//    (integer-domain hash compare, see simd_kernels.h) instead of a
//    virtual Process + EmitFn indirection per tuple;
//  - survivors move to the downstream queue by branch-free lane
//    compaction + memcpy spans instead of per-tuple push_back calls;
//  - the AddInstance-then-Release refcount round-trip the row path pays
//    for every pass-through tuple is elided (it is a net no-op: the
//    release can never be the last instance right after an AddInstance,
//    so no departure fires and the count returns to its prior value);
//  - window aggregation folds lane sub-runs with kernels::AggRun (same
//    sequential FP order, no virtual dispatch).

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "engine/engine.h"
#include "engine/simd_kernels.h"

namespace ctrlshed {

namespace {

inline Tuple GatherTuple(const TupleLaneView& run, size_t i) {
  Tuple t;
  t.lineage = run.lineage[i];
  t.source = run.source[i];
  t.arrival_time = run.arrival_time[i];
  t.value = run.value[i];
  t.aux = run.aux[i];
  t.port = run.port[i];
  return t;
}

}  // namespace

bool Engine::CanRunColumnar(const OperatorBase& op, size_t quantum) const {
  if (!columnar_enabled_ || quantum < kColumnarMinQuantum) return false;
  if (op.columnar_kind() == ColumnarKind::kNone) return false;
  // The executor routes to at most one downstream; fan-out keeps the row
  // path (per-downstream AddInstance bookkeeping).
  return op.downstream().size() <= 1;
}

void Engine::ExecuteBatchColumnar(OperatorBase* op, size_t quantum,
                                  SimTime limit) {
  if (observer_ != nullptr) observer_->OnInvocationStart(*op);

  TupleQueue& queue = op->queue();
  const double r_in = network_->RemainingCost(op);
  const auto& downstream = op->downstream();
  const bool is_sink = downstream.empty();
  OperatorBase* down_op = is_sink ? nullptr : downstream[0].op;
  const int32_t down_port =
      is_sink ? 0 : static_cast<int32_t>(downstream[0].port);
  const double r_down = is_sink ? 0.0 : network_->RemainingCost(down_op);
  const ColumnarKind kind = op->columnar_kind();
  const double op_cost = op->cost();

  // Filter constants: integer pass bound of the hash predicate.
  uint64_t salt = 0;
  uint64_t pass_bound = 0;
  if (kind == ColumnarKind::kFilter) {
    const auto* filter = static_cast<const FilterOp*>(op);
    salt = kernels::FilterSalt(op->id());
    pass_bound = kernels::FilterPassBound(filter->threshold());
  }

  // Window-aggregate state, checked out once and written back at the end
  // so row and columnar batches interleave freely.
  WindowAggregateOp* agg = kind == ColumnarKind::kWindowAgg
                               ? static_cast<WindowAggregateOp*>(op)
                               : nullptr;
  WindowAggregateOp::WindowState ws;
  size_t window = 0;
  if (agg != nullptr) {
    ws = agg->window_state();
    window = static_cast<size_t>(agg->window_size());
  }

  size_t ran = 0;
  double batch_cost = 0.0;
  bool stop = false;

  while (!stop && !queue.empty()) {
    const TupleLaneView run = queue.FrontRun();
    const size_t take = std::min(run.len, quantum - ran);
    size_t processed = 0;

    if (kind != ColumnarKind::kWindowAgg) {
      // --- Filter / passthrough -----------------------------------------
      if (kind == ColumnarKind::kFilter) {
        kernels::Kernels().filter_mask(run.value, take, salt, pass_bound,
                                       scratch_.mask);
      } else {
        std::memset(scratch_.mask, 1, take);
      }

      size_t survivors_down = 0;
      while (processed < take) {
        const size_t i = processed;
        --queued_tuples_;
        outstanding_base_load_ -= r_in;
        if (queued_tuples_ == 0) outstanding_base_load_ = 0.0;
        double drained = r_in;

        const double cost = op_cost * CostMultiplierAt(clock_);
        clock_ += cost / headroom_;
        counters_.busy_seconds += cost;
        ++counters_.invocations;
        batch_cost += cost;
        const SimTime completion = clock_;

        const bool pass = scratch_.mask[i] != 0;
        bool emitted_to_sink = false;
        if (pass) {
          if (is_sink) {
            emitted_to_sink = true;
          } else {
            ++queued_tuples_;
            outstanding_base_load_ += r_down;
            drained -= r_down;
            ++survivors_down;
          }
        }
        counters_.drained_base_load += drained;

        if (!pass || is_sink) {
          // Dropped, or departing at a sink: the release is observable.
          // (A survivor routed downstream is the row path's AddInstance-
          // then-Release no-op, elided here.)
          ReleaseLineage(GatherTuple(run, i), completion,
                         emitted_to_sink ? DepartureKind::kOutput
                                         : DepartureKind::kFiltered,
                         /*shed=*/false);
        }

        ++processed;
        ++ran;
        if (ran >= quantum || clock_ >= limit) {
          stop = true;
          break;
        }
      }

      if (survivors_down > 0) {
        // Branch-free compaction of the survivors' lanes into staging,
        // then contiguous span copies into the downstream queue.
        TupleQueue& dq = down_op->queue();
        kernels::CompactLane(run.value, scratch_.mask, processed,
                             scratch_.value);
        kernels::CompactLane(run.aux, scratch_.mask, processed, scratch_.aux);
        kernels::CompactLane(run.arrival_time, scratch_.mask, processed,
                             scratch_.arrival_time);
        kernels::CompactLane(run.lineage, scratch_.mask, processed,
                             scratch_.lineage);
        kernels::CompactLane(run.source, scratch_.mask, processed,
                             scratch_.source);
        size_t written = 0;
        while (written < survivors_down) {
          TupleLaneFill fill = dq.BackFill();
          const size_t n = std::min(fill.capacity, survivors_down - written);
          std::memcpy(fill.value, scratch_.value + written,
                      n * sizeof(double));
          std::memcpy(fill.aux, scratch_.aux + written, n * sizeof(double));
          std::memcpy(fill.arrival_time, scratch_.arrival_time + written,
                      n * sizeof(SimTime));
          std::memcpy(fill.lineage, scratch_.lineage + written,
                      n * sizeof(LineageId));
          std::memcpy(fill.source, scratch_.source + written,
                      n * sizeof(int32_t));
          for (size_t j = 0; j < n; ++j) fill.port[j] = down_port;
          dq.CommitBack(n);
          written += n;
        }
      }
    } else {
      // --- Tumbling count window ----------------------------------------
      while (processed < take && !stop) {
        const size_t to_close = window - static_cast<size_t>(ws.count);
        const size_t span = std::min(take - processed, to_close);
        const bool closes = span == to_close;
        const size_t base = processed;
        const size_t prefix = closes ? span - 1 : span;

        // Non-closing tuples: absorbed into the window, depart kFiltered.
        size_t done = 0;
        while (done < prefix) {
          const size_t i = base + done;
          --queued_tuples_;
          outstanding_base_load_ -= r_in;
          if (queued_tuples_ == 0) outstanding_base_load_ = 0.0;

          const double cost = op_cost * CostMultiplierAt(clock_);
          clock_ += cost / headroom_;
          counters_.busy_seconds += cost;
          ++counters_.invocations;
          batch_cost += cost;
          const SimTime completion = clock_;

          counters_.drained_base_load += r_in;  // no emission: drained = r_in
          ReleaseLineage(GatherTuple(run, i), completion,
                         DepartureKind::kFiltered, /*shed=*/false);
          ++done;
          ++ran;
          if (ran >= quantum || clock_ >= limit) {
            stop = true;
            break;
          }
        }
        // Fold the absorbed tuples into the accumulator — the same
        // sequential order as the row path's per-tuple adds, so the
        // window value is bit-identical.
        if (done > 0) {
          if (ws.count == 0) {
            ws.acc = 0.0;
            ws.max = run.value[base];
          }
          kernels::AggRun(run.value + base, done, &ws.acc, &ws.max);
          ws.count += static_cast<int>(done);
        }
        processed += done;
        if (stop || !closes || done < prefix) continue;

        // Window-closing tuple, inline (row-path operation order: the
        // derived emission happens before the input tuple's release).
        const size_t i = base + prefix;
        --queued_tuples_;
        outstanding_base_load_ -= r_in;
        if (queued_tuples_ == 0) outstanding_base_load_ = 0.0;
        double drained = r_in;

        const double cost = op_cost * CostMultiplierAt(clock_);
        clock_ += cost / headroom_;
        counters_.busy_seconds += cost;
        ++counters_.invocations;
        batch_cost += cost;
        const SimTime completion = clock_;

        if (ws.count == 0) {
          ws.acc = 0.0;
          ws.max = run.value[i];
        }
        ws.acc += run.value[i];
        ws.max = std::max(ws.max, run.value[i]);
        ws.count = static_cast<int>(window);

        Tuple out = GatherTuple(run, i);
        out.lineage = kPendingLineage;
        out.value = agg->WindowValue(ws);
        ws.count = 0;
        if (is_sink) {
          // Born and departing in the same invocation.
          if (on_departure_) {
            on_departure_(Departure{out.arrival_time, completion, out.source,
                                    DepartureKind::kOutput, /*derived=*/true});
          }
        } else {
          out.lineage = lineages_.Allocate(/*derived=*/true);
          lineages_.AddInstance(out.lineage);
          out.port = down_port;
          down_op->queue().push_back(out);
          ++queued_tuples_;
          outstanding_base_load_ += r_down;
          drained -= r_down;
        }
        counters_.drained_base_load += drained;
        // The absorbed input always departs kFiltered (the emission above
        // was derived, so the row path's emitted_to_sink stays false).
        ReleaseLineage(GatherTuple(run, i), completion,
                       DepartureKind::kFiltered, /*shed=*/false);
        ++processed;
        ++ran;
        if (ran >= quantum || clock_ >= limit) stop = true;
      }
    }

    queue.PopFrontN(processed);
  }

  if (agg != nullptr) agg->set_window_state(ws);
  if (observer_ != nullptr) {
    observer_->OnInvocationBatch(*op, static_cast<uint64_t>(ran), batch_cost);
  }
}

}  // namespace ctrlshed
