#ifndef CTRLSHED_ENGINE_QUERY_NETWORK_H_
#define CTRLSHED_ENGINE_QUERY_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"

namespace ctrlshed {

/// A network of operators forming one or more (possibly branched) query
/// execution paths, plus the mapping from stream sources to their entry
/// operators. Owns all operators.
///
/// Typical construction:
///
///   QueryNetwork net;
///   auto* f = net.Add(std::make_unique<FilterOp>("f1", Millis(1), 0.8));
///   auto* m = net.Add(std::make_unique<MapOp>("m1", Millis(2)));
///   f->ConnectTo(m);
///   net.AddEntry(/*source=*/0, f);
///   net.Finalize();
class QueryNetwork {
 public:
  QueryNetwork() = default;
  QueryNetwork(const QueryNetwork&) = delete;
  QueryNetwork& operator=(const QueryNetwork&) = delete;

  /// Adds an operator and returns a non-owning pointer to it.
  template <typename Op>
  Op* Add(std::unique_ptr<Op> op) {
    Op* raw = op.get();
    raw->set_id(static_cast<int>(operators_.size()));
    operators_.push_back(std::move(op));
    return raw;
  }

  /// Registers `op` as an entry point for stream `source`. A stream may
  /// enter multiple operators (paper Fig. 2: S2 enters operators 2 and 3).
  void AddEntry(int source, OperatorBase* op);

  /// Validates the topology (acyclic, entries registered) and precomputes
  /// the static load estimates. Must be called before the network is given
  /// to an Engine; construction methods must not be called afterwards.
  void Finalize();

  /// Like Finalize, but first rescales every operator's cost uniformly so
  /// that MeanEntryCost() equals `target_mean_entry_cost`. Lets builders
  /// express relative costs and pin the model constant c exactly.
  void FinalizeWithMeanEntryCost(double target_mean_entry_cost);

  bool finalized() const { return finalized_; }

  size_t NumOperators() const { return operators_.size(); }
  OperatorBase* Operator(size_t i) { return operators_[i].get(); }
  const OperatorBase* Operator(size_t i) const { return operators_[i].get(); }

  int NumSources() const { return static_cast<int>(entries_.size()); }
  const std::vector<OperatorBase*>& Entries(int source) const;

  /// Expected remaining CPU cost (seconds, at nominal operator costs) of a
  /// tuple sitting in `op`'s queue, including `op` itself and the
  /// selectivity-weighted costs of everything downstream. This is the
  /// Borealis-style static load estimate.
  double RemainingCost(const OperatorBase* op) const;

  /// Expected total CPU cost of one tuple of stream `source` (sum of
  /// RemainingCost over its entry operators).
  double EntryCost(int source) const;

  /// Expected per-tuple cost averaged over sources with equal weights —
  /// the model's constant `c` at nominal costs.
  double MeanEntryCost() const;

 private:
  double ComputeRemainingCost(const OperatorBase* op,
                              std::vector<double>& memo,
                              std::vector<int>& state) const;

  std::vector<std::unique_ptr<OperatorBase>> operators_;
  std::vector<std::vector<OperatorBase*>> entries_;  // per source
  std::vector<double> remaining_cost_;               // per operator id
  bool finalized_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_QUERY_NETWORK_H_
