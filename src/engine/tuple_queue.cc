#include "engine/tuple_queue.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

TupleChunkPool::~TupleChunkPool() {
  for (TupleChunk* chunk : free_) delete chunk;
}

TupleChunk* TupleChunkPool::Acquire() {
  if (!free_.empty()) {
    TupleChunk* chunk = free_.back();
    free_.pop_back();
    return chunk;
  }
  ++allocated_;
  return new TupleChunk;
}

void TupleChunkPool::Release(TupleChunk* chunk) { free_.push_back(chunk); }

TupleQueue::~TupleQueue() { clear(); }

void TupleQueue::BindPool(TupleChunkPool* pool) {
  CS_CHECK_MSG(size_ == 0, "TupleQueue::BindPool requires an empty queue");
  CS_CHECK_MSG(pool_ == nullptr || pool == nullptr || pool_ == pool,
               "TupleQueue is already bound to a different pool");
  clear();  // Returns any retained chunk to the previous allocator.
  pool_ = pool;
}

Tuple TupleQueue::front() const {
  CS_CHECK(size_ > 0);
  return ring_[chunk_head_ & (ring_.size() - 1)]->Get(slot_head_);
}

Tuple TupleQueue::back() const {
  CS_CHECK(size_ > 0);
  const size_t pos = slot_head_ + size_ - 1;
  return ChunkAt(pos / TupleChunk::kTuples)->Get(pos % TupleChunk::kTuples);
}

void TupleQueue::push_back(const Tuple& t) {
  const size_t pos = slot_head_ + size_;
  const size_t off = pos / TupleChunk::kTuples;
  if (off == num_chunks_) {
    if (num_chunks_ == ring_.size()) GrowRing();
    ring_[(chunk_head_ + num_chunks_) & (ring_.size() - 1)] = AcquireChunk();
    ++num_chunks_;
  }
  ChunkAt(off)->Set(pos % TupleChunk::kTuples, t);
  ++size_;
}

void TupleQueue::pop_front() {
  CS_CHECK(size_ > 0);
  ++slot_head_;
  --size_;
  if (slot_head_ == TupleChunk::kTuples) {
    ReleaseChunk(ring_[chunk_head_ & (ring_.size() - 1)]);
    ++chunk_head_;
    --num_chunks_;
    slot_head_ = 0;
  } else if (size_ == 0) {
    // Rewind within the retained front chunk so long-lived mostly-empty
    // queues never creep toward a chunk boundary.
    slot_head_ = 0;
  }
}

TupleLaneView TupleQueue::FrontRun() const {
  CS_CHECK(size_ > 0);
  const TupleChunk* chunk = ring_[chunk_head_ & (ring_.size() - 1)];
  TupleLaneView view;
  view.value = chunk->value + slot_head_;
  view.aux = chunk->aux + slot_head_;
  view.arrival_time = chunk->arrival_time + slot_head_;
  view.lineage = chunk->lineage + slot_head_;
  view.source = chunk->source + slot_head_;
  view.port = chunk->port + slot_head_;
  view.len = std::min(size_, TupleChunk::kTuples - slot_head_);
  return view;
}

void TupleQueue::PopFrontN(size_t n) {
  CS_CHECK(n <= size_);
  while (n > 0) {
    const size_t run = std::min(n, TupleChunk::kTuples - slot_head_);
    slot_head_ += run;
    size_ -= run;
    n -= run;
    if (slot_head_ == TupleChunk::kTuples) {
      ReleaseChunk(ring_[chunk_head_ & (ring_.size() - 1)]);
      ++chunk_head_;
      --num_chunks_;
      slot_head_ = 0;
    } else if (size_ == 0) {
      slot_head_ = 0;  // Same rewind as pop_front.
    }
  }
}

TupleLaneFill TupleQueue::BackFill() {
  const size_t pos = slot_head_ + size_;
  const size_t off = pos / TupleChunk::kTuples;
  if (off == num_chunks_) {
    if (num_chunks_ == ring_.size()) GrowRing();
    ring_[(chunk_head_ + num_chunks_) & (ring_.size() - 1)] = AcquireChunk();
    ++num_chunks_;
  }
  TupleChunk* chunk = ChunkAt(off);
  const size_t slot = pos % TupleChunk::kTuples;
  TupleLaneFill fill;
  fill.value = chunk->value + slot;
  fill.aux = chunk->aux + slot;
  fill.arrival_time = chunk->arrival_time + slot;
  fill.lineage = chunk->lineage + slot;
  fill.source = chunk->source + slot;
  fill.port = chunk->port + slot;
  fill.capacity = TupleChunk::kTuples - slot;
  return fill;
}

void TupleQueue::pop_back() {
  CS_CHECK(size_ > 0);
  const size_t pos = slot_head_ + size_ - 1;
  --size_;
  if (pos % TupleChunk::kTuples == 0 && pos / TupleChunk::kTuples > 0) {
    // The popped tuple was the sole occupant of the trailing chunk.
    ReleaseChunk(ChunkAt(num_chunks_ - 1));
    --num_chunks_;
  } else if (size_ == 0) {
    slot_head_ = 0;
    if (pos == 0 && num_chunks_ == 1) {
      // Queue drained via pop_back down to the front chunk's slot 0:
      // release it too so pop_back-only drains don't pin a chunk.
      ReleaseChunk(ring_[chunk_head_ & (ring_.size() - 1)]);
      --num_chunks_;
    }
  }
}

void TupleQueue::clear() {
  for (size_t i = 0; i < num_chunks_; ++i) ReleaseChunk(ChunkAt(i));
  num_chunks_ = 0;
  chunk_head_ = 0;
  slot_head_ = 0;
  size_ = 0;
}

TupleChunk* TupleQueue::AcquireChunk() {
  return pool_ != nullptr ? pool_->Acquire() : new TupleChunk;
}

void TupleQueue::ReleaseChunk(TupleChunk* chunk) {
  if (pool_ != nullptr) {
    pool_->Release(chunk);
  } else {
    delete chunk;
  }
}

void TupleQueue::GrowRing() {
  const size_t old_cap = ring_.size();
  std::vector<TupleChunk*> grown(old_cap == 0 ? 2 : old_cap * 2, nullptr);
  // Re-pack live chunks to the front of the new ring.
  for (size_t i = 0; i < num_chunks_; ++i) grown[i] = ChunkAt(i);
  ring_.swap(grown);
  chunk_head_ = 0;
}

}  // namespace ctrlshed
