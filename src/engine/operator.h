#ifndef CTRLSHED_ENGINE_OPERATOR_H_
#define CTRLSHED_ENGINE_OPERATOR_H_

#include <deque>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/sim_time.h"
#include "engine/tuple.h"
#include "engine/tuple_queue.h"

namespace ctrlshed {

class OperatorBase;

/// Non-owning callable reference an operator uses to emit an output tuple.
/// Routing to downstream queues (or to a sink if the operator has no
/// downstream) is done by the engine.
///
/// This is a function_ref, not a std::function: the engine's emit closure
/// captures enough state to overflow std::function's small-buffer
/// optimization, which put one heap allocation on every operator
/// invocation. The referenced callable must outlive the Process call it is
/// passed to (always true: the engine keeps it on the stack across the
/// call) — operators must not store an EmitFn.
class EmitFn {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EmitFn>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit like std::function.
  EmitFn(const F& fn)
      : obj_(&fn), call_([](const void* obj, const Tuple& t) {
          (*static_cast<const F*>(obj))(t);
        }) {}

  void operator()(const Tuple& t) const { call_(obj_, t); }

 private:
  const void* obj_;
  void (*call_)(const void*, const Tuple&);
};

/// A downstream connection: the target operator and the input port the
/// emitted tuples arrive on.
struct Downstream {
  OperatorBase* op = nullptr;
  int port = 0;
};

/// How the engine's columnar executor may run an operator over a whole
/// lane run instead of per-tuple Process calls. Operators that keep
/// per-tuple state the executor cannot replicate (joins, time windows,
/// user map functions) report kNone and stay on the row path.
enum class ColumnarKind : uint8_t {
  kNone,         ///< Row path only.
  kFilter,       ///< Hash-predicate pass/drop (vectorized mask).
  kPassthrough,  ///< Emits the input unchanged, exactly once.
  kWindowAgg,    ///< Tumbling count window (lane-run partial sums).
};

/// Base class for all query operators.
///
/// Each operator owns one FIFO input queue (tuples carry their input port,
/// which matters only for multi-input operators such as joins) and has a
/// fixed nominal CPU cost per invocation. One invocation consumes exactly
/// one input tuple, which mirrors Borealis' per-tuple box processing in the
/// paper's model.
class OperatorBase {
 public:
  OperatorBase(std::string name, double cost_seconds);
  virtual ~OperatorBase() = default;

  OperatorBase(const OperatorBase&) = delete;
  OperatorBase& operator=(const OperatorBase&) = delete;

  /// Consumes `in` at virtual time `now`, emitting zero or more outputs.
  virtual void Process(const Tuple& in, SimTime now, const EmitFn& emit) = 0;

  /// Expected number of output tuples per input tuple, used for static load
  /// estimation (the Borealis-style cost x selectivity products of
  /// Section 4.2 of the Aurora load-shedding paper).
  virtual double Selectivity() const { return 1.0; }

  /// Columnar-executor classification; see ColumnarKind. Must describe the
  /// CURRENT configuration (a MapOp with a user function is kNone).
  virtual ColumnarKind columnar_kind() const { return ColumnarKind::kNone; }

  const std::string& name() const { return name_; }
  double cost() const { return cost_; }
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  /// Adjusts the nominal cost; only network builders may call this, and
  /// only before QueryNetwork::Finalize.
  void set_cost(double cost_seconds) { cost_ = cost_seconds; }

  TupleQueue& queue() { return queue_; }
  const TupleQueue& queue() const { return queue_; }

  const std::vector<Downstream>& downstream() const { return downstream_; }

  /// Connects this operator's output to `op`'s input `port`.
  void ConnectTo(OperatorBase* op, int port = 0);

 private:
  std::string name_;
  double cost_;
  int id_ = -1;
  TupleQueue queue_;
  std::vector<Downstream> downstream_;
};

/// Stateless selection with fixed selectivity `threshold`: the pass
/// decision is a deterministic hash of the tuple payload and the operator
/// id, uniform in [0,1) and independent across operators — so chained
/// filters multiply their selectivities, as the paper's identification
/// setup (uniform payload values fixing all selectivities) assumes.
class FilterOp : public OperatorBase {
 public:
  FilterOp(std::string name, double cost_seconds, double threshold);

  void Process(const Tuple& in, SimTime now, const EmitFn& emit) override;
  double Selectivity() const override { return threshold_; }
  ColumnarKind columnar_kind() const override { return ColumnarKind::kFilter; }

  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

/// Stateless transformation: applies `fn` to the tuple payload (identity by
/// default). Selectivity 1.
class MapOp : public OperatorBase {
 public:
  using MapFn = std::function<void(Tuple&)>;

  MapOp(std::string name, double cost_seconds, MapFn fn = nullptr);

  void Process(const Tuple& in, SimTime now, const EmitFn& emit) override;
  ColumnarKind columnar_kind() const override {
    return fn_ ? ColumnarKind::kNone : ColumnarKind::kPassthrough;
  }

 private:
  MapFn fn_;
};

/// Merges any number of upstream streams into one output stream
/// (pass-through; the merge itself is realized by several upstreams
/// connecting to this operator's single queue).
class UnionOp : public OperatorBase {
 public:
  UnionOp(std::string name, double cost_seconds);

  void Process(const Tuple& in, SimTime now, const EmitFn& emit) override;
  ColumnarKind columnar_kind() const override {
    return ColumnarKind::kPassthrough;
  }
};

/// Tumbling count-based window aggregate: absorbs `window_size` input
/// tuples, then emits one derived tuple whose value is the chosen aggregate
/// of the window. Selectivity 1/window_size.
class WindowAggregateOp : public OperatorBase {
 public:
  enum class Kind { kMean, kSum, kMax, kCount };

  WindowAggregateOp(std::string name, double cost_seconds, int window_size,
                    Kind kind = Kind::kMean);

  void Process(const Tuple& in, SimTime now, const EmitFn& emit) override;
  double Selectivity() const override { return 1.0 / window_size_; }
  ColumnarKind columnar_kind() const override {
    return ColumnarKind::kWindowAgg;
  }

  int window_size() const { return window_size_; }
  Kind kind() const { return kind_; }

  /// Open-window accumulator state, exposed so the engine's columnar
  /// executor can fold whole lane runs (kernels::AggRun) and hand the
  /// state back — the row and columnar paths interleave freely.
  struct WindowState {
    int count = 0;
    double acc = 0.0;
    double max = 0.0;
  };
  WindowState window_state() const { return {count_, acc_, max_}; }
  void set_window_state(const WindowState& s) {
    count_ = s.count;
    acc_ = s.acc;
    max_ = s.max;
  }

  /// The value a closing window emits, given the accumulated state.
  double WindowValue(const WindowState& s) const;

 private:
  int window_size_;
  Kind kind_;
  int count_ = 0;
  double acc_ = 0.0;
  double max_ = 0.0;
};

/// Tumbling TIME-based window aggregate: accumulates tuples until the
/// window that contains them ends (windows are [k W, (k+1) W) in arrival
/// time), then emits one derived tuple per non-empty window. Selectivity
/// for static load estimation must be supplied (it depends on the input
/// rate: roughly 1 / (rate x window)).
class TimeWindowAggregateOp : public OperatorBase {
 public:
  TimeWindowAggregateOp(std::string name, double cost_seconds,
                        SimTime window_seconds, double expected_selectivity,
                        WindowAggregateOp::Kind kind =
                            WindowAggregateOp::Kind::kMean);

  void Process(const Tuple& in, SimTime now, const EmitFn& emit) override;
  double Selectivity() const override { return expected_selectivity_; }

  SimTime window_seconds() const { return window_seconds_; }

 private:
  void EmitWindow(const Tuple& trigger, const EmitFn& emit);

  SimTime window_seconds_;
  double expected_selectivity_;
  WindowAggregateOp::Kind kind_;
  int64_t current_window_ = -1;
  int count_ = 0;
  double acc_ = 0.0;
  double max_ = 0.0;
};

/// Explicitly duplicates each input tuple to every downstream connection
/// (fan-out is realized by the engine's routing; this operator documents
/// the intent and carries the split's CPU cost).
class SplitOp : public OperatorBase {
 public:
  SplitOp(std::string name, double cost_seconds);

  void Process(const Tuple& in, SimTime now, const EmitFn& emit) override;
  // Routing fan-out happens in the engine; a single-downstream split is a
  // passthrough there (the columnar gate skips multi-downstream ops).
  ColumnarKind columnar_kind() const override {
    return ColumnarKind::kPassthrough;
  }
};

/// Sliding-window band join over two input ports. Tuples from port 0 probe
/// the window of port 1 and vice versa; a pair matches when their `aux`
/// join keys differ by at most `band`. Windows are time-based: entries older
/// than `window_seconds` relative to the probing tuple are evicted.
///
/// `expected_selectivity` is the caller-supplied estimate of matches per
/// input used for static load estimation (the true match rate depends on
/// the data; Borealis likewise relies on measured selectivity estimates).
class SlidingJoinOp : public OperatorBase {
 public:
  SlidingJoinOp(std::string name, double cost_seconds, SimTime window_seconds,
                double band, double expected_selectivity);

  void Process(const Tuple& in, SimTime now, const EmitFn& emit) override;
  double Selectivity() const override { return expected_selectivity_; }

  size_t WindowSize(int port) const;

 private:
  struct Entry {
    SimTime t;
    double key;
    double value;
  };

  void Evict(std::deque<Entry>& window, SimTime now);

  SimTime window_seconds_;
  double band_;
  double expected_selectivity_;
  std::deque<Entry> windows_[2];
};

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_OPERATOR_H_
