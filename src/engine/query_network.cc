#include "engine/query_network.h"

#include "common/macros.h"

namespace ctrlshed {

namespace {
// DFS colors for cycle detection / memoization.
constexpr int kUnvisited = 0;
constexpr int kInProgress = 1;
constexpr int kDone = 2;
}  // namespace

void QueryNetwork::AddEntry(int source, OperatorBase* op) {
  CS_CHECK_MSG(!finalized_, "network already finalized");
  CS_CHECK(op != nullptr);
  CS_CHECK_MSG(source >= 0, "source index must be non-negative");
  if (static_cast<size_t>(source) >= entries_.size()) {
    entries_.resize(source + 1);
  }
  entries_[source].push_back(op);
}

const std::vector<OperatorBase*>& QueryNetwork::Entries(int source) const {
  CS_CHECK(source >= 0 && static_cast<size_t>(source) < entries_.size());
  return entries_[source];
}

double QueryNetwork::ComputeRemainingCost(const OperatorBase* op,
                                          std::vector<double>& memo,
                                          std::vector<int>& state) const {
  const int id = op->id();
  CS_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < memo.size(),
               "operator not registered with this network");
  CS_CHECK_MSG(state[id] != kInProgress, "query network contains a cycle");
  if (state[id] == kDone) return memo[id];
  state[id] = kInProgress;
  double down = 0.0;
  for (const Downstream& d : op->downstream()) {
    down += ComputeRemainingCost(d.op, memo, state);
  }
  memo[id] = op->cost() + op->Selectivity() * down;
  state[id] = kDone;
  return memo[id];
}

void QueryNetwork::Finalize() {
  CS_CHECK_MSG(!finalized_, "Finalize called twice");
  CS_CHECK_MSG(!operators_.empty(), "network has no operators");
  CS_CHECK_MSG(!entries_.empty(), "network has no entry points");
  for (const auto& per_source : entries_) {
    CS_CHECK_MSG(!per_source.empty(), "a source has no entry operators");
  }

  remaining_cost_.assign(operators_.size(), 0.0);
  std::vector<int> state(operators_.size(), kUnvisited);
  for (const auto& op : operators_) {
    ComputeRemainingCost(op.get(), remaining_cost_, state);
  }
  finalized_ = true;
}

void QueryNetwork::FinalizeWithMeanEntryCost(double target_mean_entry_cost) {
  CS_CHECK_MSG(target_mean_entry_cost > 0.0, "target cost must be positive");
  Finalize();
  const double mean = MeanEntryCost();
  CS_CHECK_MSG(mean > 0.0, "network has zero per-tuple cost");
  const double factor = target_mean_entry_cost / mean;
  for (auto& op : operators_) op->set_cost(op->cost() * factor);
  for (double& r : remaining_cost_) r *= factor;
}

double QueryNetwork::RemainingCost(const OperatorBase* op) const {
  CS_CHECK_MSG(finalized_, "network not finalized");
  const int id = op->id();
  CS_CHECK(id >= 0 && static_cast<size_t>(id) < remaining_cost_.size());
  return remaining_cost_[id];
}

double QueryNetwork::EntryCost(int source) const {
  double total = 0.0;
  for (const OperatorBase* op : Entries(source)) {
    total += RemainingCost(op);
  }
  return total;
}

double QueryNetwork::MeanEntryCost() const {
  CS_CHECK_MSG(finalized_, "network not finalized");
  double total = 0.0;
  for (int s = 0; s < NumSources(); ++s) total += EntryCost(s);
  return total / NumSources();
}

}  // namespace ctrlshed
