#include "engine/engine.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

Engine::Engine(QueryNetwork* network, double headroom,
               std::unique_ptr<SchedulerPolicy> scheduler)
    : network_(network),
      headroom_(headroom),
      scheduler_(scheduler ? std::move(scheduler)
                           : std::make_unique<RoundRobinScheduler>()) {
  CS_CHECK(network_ != nullptr);
  CS_CHECK_MSG(network_->finalized(), "network must be finalized");
  CS_CHECK_MSG(headroom_ > 0.0 && headroom_ <= 1.0, "headroom must be in (0,1]");
  nominal_entry_cost_ = network_->MeanEntryCost();
  CS_CHECK_MSG(nominal_entry_cost_ > 0.0, "network has zero per-tuple cost");
  const size_t n = network_->NumOperators();
  for (size_t i = 0; i < n; ++i) {
    network_->Operator(i)->queue().BindPool(&chunk_pool_);
  }
}

Engine::~Engine() {
  // Return all queued chunks to the pool (it frees them), then unbind so
  // the network can outlive this engine or serve a fresh one.
  const size_t n = network_->NumOperators();
  for (size_t i = 0; i < n; ++i) {
    TupleQueue& q = network_->Operator(i)->queue();
    q.clear();
    q.BindPool(nullptr);
  }
}

double Engine::CostMultiplierAt(SimTime t) const {
  if (!cost_multiplier_) return 1.0;
  double m = cost_multiplier_(t);
  CS_CHECK_MSG(m > 0.0, "cost multiplier must be positive");
  return m;
}

double Engine::VirtualQueueLength() const {
  // The incremental +/- bookkeeping can leave ~1e-16 residue at empty.
  if (queued_tuples_ == 0) return 0.0;
  return std::max(0.0, outstanding_base_load_ / nominal_entry_cost_);
}

void Engine::Inject(Tuple t, SimTime now) {
  // If the CPU was idle and its clock lags the arrival, service of this
  // tuple can only start now.
  if (queued_tuples_ == 0 && now > clock_) clock_ = now;

  t.lineage = lineages_.Allocate(/*derived=*/false);
  for (OperatorBase* entry : network_->Entries(t.source)) {
    Tuple copy = t;
    lineages_.AddInstance(copy.lineage);
    copy.port = 0;
    entry->queue().push_back(copy);
    ++queued_tuples_;
    outstanding_base_load_ += network_->RemainingCost(entry);
  }
  ++counters_.admitted;
}

void Engine::InjectBatch(const Tuple* tuples, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    AdvanceTo(tuples[i].arrival_time);
    Inject(tuples[i], tuples[i].arrival_time);
  }
}

void Engine::ReleaseLineage(const Tuple& t, SimTime depart_time,
                            DepartureKind kind, bool shed) {
  const LineageTable::Released r = lineages_.Release(t.lineage, shed);
  if (!r.last) return;

  // A lineage any of whose branches was shed counts as lost, not departed.
  if (r.tainted) {
    if (!r.derived) ++counters_.shed_lineages;
    return;
  }
  if (!r.derived) ++counters_.departed;
  if (on_departure_) {
    on_departure_(Departure{t.arrival_time, depart_time, t.source, kind, r.derived});
  }
}

void Engine::ExecuteBatch(OperatorBase* op, size_t quantum, SimTime limit) {
  CS_CHECK(!op->queue().empty());
  if (CanRunColumnar(*op, quantum)) {
    ExecuteBatchColumnar(op, quantum, limit);
    return;
  }
  if (observer_ != nullptr) observer_->OnInvocationStart(*op);

  // Everything per-operator is hoisted out of the invocation loop; the
  // loop body keeps the seed's floating-point operation order exactly, so
  // quantum == 1 reproduces the per-tuple engine bit-for-bit.
  TupleQueue& queue = op->queue();
  const double r_in = network_->RemainingCost(op);
  const auto& downstream = op->downstream();
  const bool is_sink = downstream.empty();

  // Per-invocation emit context, rebound each iteration.
  SimTime completion = 0.0;
  double drained = 0.0;
  bool emitted_to_sink = false;

  const auto emit_impl = [&](const Tuple& out_in) {
    Tuple out = out_in;
    const bool derived = (out.lineage == kPendingLineage);
    if (is_sink) {
      // Sink: the emitted tuple departs the network right here.
      if (derived) {
        // A tuple born and departing in the same invocation (e.g. an
        // aggregate at the end of a path). Report it directly.
        if (on_departure_) {
          on_departure_(Departure{out.arrival_time, completion, out.source,
                                  DepartureKind::kOutput, /*derived=*/true});
        }
      } else {
        emitted_to_sink = true;
      }
      return;
    }
    if (derived) out.lineage = lineages_.Allocate(/*derived=*/true);
    for (const Downstream& d : downstream) {
      Tuple copy = out;
      lineages_.AddInstance(copy.lineage);
      copy.port = d.port;
      d.op->queue().push_back(copy);
      ++queued_tuples_;
      const double r = network_->RemainingCost(d.op);
      outstanding_base_load_ += r;
      drained -= r;
    }
  };
  const EmitFn emit(emit_impl);

  size_t ran = 0;
  double batch_cost = 0.0;
  for (;;) {
    const Tuple in = queue.front();
    queue.pop_front();
    --queued_tuples_;
    outstanding_base_load_ -= r_in;
    if (queued_tuples_ == 0) outstanding_base_load_ = 0.0;
    drained = r_in;

    const double cost = op->cost() * CostMultiplierAt(clock_);
    clock_ += cost / headroom_;
    counters_.busy_seconds += cost;
    ++counters_.invocations;
    batch_cost += cost;

    emitted_to_sink = false;
    completion = clock_;
    op->Process(in, completion, emit);
    counters_.drained_base_load += drained;

    const DepartureKind kind =
        emitted_to_sink ? DepartureKind::kOutput : DepartureKind::kFiltered;
    ReleaseLineage(in, completion, kind, /*shed=*/false);

    ++ran;
    if (ran >= quantum || queue.empty() || clock_ >= limit) break;
  }
  if (observer_ != nullptr) {
    observer_->OnInvocationBatch(*op, static_cast<uint64_t>(ran), batch_cost);
  }
}

void Engine::AdvanceTo(SimTime t) {
  while (clock_ < t) {
    OperatorBase* op = scheduler_->Next(network_);
    if (op == nullptr) {
      clock_ = t;
      return;
    }
    ExecuteBatch(op, scheduler_->GrantQuantum(*op), t);
  }
}

double Engine::ShedFromQueues(double target_base_load, Rng& rng,
                              QueueVictimPolicy policy) {
  double removed = 0.0;
  std::vector<OperatorBase*> nonempty;
  while (removed < target_base_load) {
    nonempty.clear();
    const size_t n = network_->NumOperators();
    for (size_t i = 0; i < n; ++i) {
      OperatorBase* op = network_->Operator(i);
      if (!op->queue().empty()) nonempty.push_back(op);
    }
    if (nonempty.empty()) break;
    OperatorBase* victim = nullptr;
    if (policy == QueueVictimPolicy::kMostCostly) {
      for (OperatorBase* op : nonempty) {
        if (victim == nullptr ||
            network_->RemainingCost(op) > network_->RemainingCost(victim)) {
          victim = op;
        }
      }
    } else {
      victim =
          nonempty[static_cast<size_t>(rng.UniformInt(0, nonempty.size() - 1))];
    }
    // Drop the newest tuple in the victim queue: it has absorbed the least
    // processing investment so far.
    Tuple t = victim->queue().back();
    victim->queue().pop_back();
    --queued_tuples_;
    const double r = network_->RemainingCost(victim);
    outstanding_base_load_ -= r;
    if (queued_tuples_ == 0) outstanding_base_load_ = 0.0;
    counters_.shed_base_load += r;
    removed += r;
    ReleaseLineage(t, clock_, DepartureKind::kFiltered, /*shed=*/true);
    if (observer_ != nullptr) observer_->OnQueueDrop(*victim);
  }
  return removed;
}

}  // namespace ctrlshed
