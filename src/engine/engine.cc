#include "engine/engine.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

Engine::Engine(QueryNetwork* network, double headroom,
               std::unique_ptr<SchedulerPolicy> scheduler)
    : network_(network),
      headroom_(headroom),
      scheduler_(scheduler ? std::move(scheduler)
                           : std::make_unique<RoundRobinScheduler>()) {
  CS_CHECK(network_ != nullptr);
  CS_CHECK_MSG(network_->finalized(), "network must be finalized");
  CS_CHECK_MSG(headroom_ > 0.0 && headroom_ <= 1.0, "headroom must be in (0,1]");
  nominal_entry_cost_ = network_->MeanEntryCost();
  CS_CHECK_MSG(nominal_entry_cost_ > 0.0, "network has zero per-tuple cost");
}

double Engine::CostMultiplierAt(SimTime t) const {
  if (!cost_multiplier_) return 1.0;
  double m = cost_multiplier_(t);
  CS_CHECK_MSG(m > 0.0, "cost multiplier must be positive");
  return m;
}

double Engine::VirtualQueueLength() const {
  // The incremental +/- bookkeeping can leave ~1e-16 residue at empty.
  if (queued_tuples_ == 0) return 0.0;
  return std::max(0.0, outstanding_base_load_ / nominal_entry_cost_);
}

void Engine::Enqueue(OperatorBase* op, Tuple t, int port, bool derived) {
  t.port = port;
  if (t.lineage == kPendingLineage) {
    t.lineage = next_lineage_++;
    lineages_[t.lineage] = LineageState{0, derived};
  }
  lineages_[t.lineage].live_instances++;
  op->queue().push_back(t);
  ++queued_tuples_;
  outstanding_base_load_ += network_->RemainingCost(op);
}

void Engine::Inject(Tuple t, SimTime now) {
  // If the CPU was idle and its clock lags the arrival, service of this
  // tuple can only start now.
  if (queued_tuples_ == 0 && now > clock_) clock_ = now;

  t.lineage = next_lineage_++;
  lineages_[t.lineage] = LineageState{0, /*derived=*/false};
  for (OperatorBase* entry : network_->Entries(t.source)) {
    Tuple copy = t;
    lineages_[copy.lineage].live_instances++;
    copy.port = 0;
    entry->queue().push_back(copy);
    ++queued_tuples_;
    outstanding_base_load_ += network_->RemainingCost(entry);
  }
  ++counters_.admitted;
}

void Engine::ReleaseLineage(const Tuple& t, SimTime depart_time,
                            DepartureKind kind, bool shed) {
  auto it = lineages_.find(t.lineage);
  CS_CHECK_MSG(it != lineages_.end(), "unknown lineage released");
  LineageState& st = it->second;
  --st.live_instances;
  CS_CHECK_MSG(st.live_instances >= 0, "lineage refcount underflow");

  // A lineage any of whose branches was shed counts as lost, not departed.
  if (shed) shed_taint_.insert(t.lineage);

  if (st.live_instances == 0) {
    const bool derived = st.derived;
    const bool tainted = shed_taint_.erase(t.lineage) > 0;
    lineages_.erase(it);
    if (tainted) {
      if (!derived) {
        ++counters_.shed_lineages;
      }
      return;
    }
    if (!derived) ++counters_.departed;
    if (on_departure_) {
      on_departure_(Departure{t.arrival_time, depart_time, t.source, kind, derived});
    }
  }
}

void Engine::ExecuteOne(OperatorBase* op) {
  CS_CHECK(!op->queue().empty());
  if (observer_ != nullptr) observer_->OnInvocationStart(*op);
  Tuple in = op->queue().front();
  op->queue().pop_front();
  --queued_tuples_;
  const double r_in = network_->RemainingCost(op);
  outstanding_base_load_ -= r_in;
  if (queued_tuples_ == 0) outstanding_base_load_ = 0.0;
  double drained = r_in;

  const double cost = op->cost() * CostMultiplierAt(clock_);
  clock_ += cost / headroom_;
  counters_.busy_seconds += cost;
  ++counters_.invocations;

  bool emitted_to_sink = false;
  const SimTime completion = clock_;

  EmitFn emit = [&](const Tuple& out_in) {
    Tuple out = out_in;
    const bool derived = (out.lineage == kPendingLineage);
    if (op->downstream().empty()) {
      // Sink: the emitted tuple departs the network right here.
      if (derived) {
        // A tuple born and departing in the same invocation (e.g. an
        // aggregate at the end of a path). Report it directly.
        if (on_departure_) {
          on_departure_(Departure{out.arrival_time, completion, out.source,
                                  DepartureKind::kOutput, /*derived=*/true});
        }
      } else {
        emitted_to_sink = true;
      }
      return;
    }
    if (derived) {
      out.lineage = next_lineage_++;
      lineages_[out.lineage] = LineageState{0, /*derived=*/true};
    }
    for (const Downstream& d : op->downstream()) {
      Tuple copy = out;
      lineages_[copy.lineage].live_instances++;
      copy.port = d.port;
      d.op->queue().push_back(copy);
      ++queued_tuples_;
      const double r = network_->RemainingCost(d.op);
      outstanding_base_load_ += r;
      drained -= r;
    }
  };

  op->Process(in, completion, emit);
  counters_.drained_base_load += drained;

  const DepartureKind kind =
      emitted_to_sink ? DepartureKind::kOutput : DepartureKind::kFiltered;
  ReleaseLineage(in, completion, kind, /*shed=*/false);
  if (observer_ != nullptr) observer_->OnInvocationEnd(*op, cost);
}

void Engine::AdvanceTo(SimTime t) {
  while (clock_ < t) {
    OperatorBase* op = scheduler_->Next(network_);
    if (op == nullptr) {
      clock_ = t;
      return;
    }
    ExecuteOne(op);
  }
}

double Engine::ShedFromQueues(double target_base_load, Rng& rng,
                              QueueVictimPolicy policy) {
  double removed = 0.0;
  std::vector<OperatorBase*> nonempty;
  while (removed < target_base_load) {
    nonempty.clear();
    const size_t n = network_->NumOperators();
    for (size_t i = 0; i < n; ++i) {
      OperatorBase* op = network_->Operator(i);
      if (!op->queue().empty()) nonempty.push_back(op);
    }
    if (nonempty.empty()) break;
    OperatorBase* victim = nullptr;
    if (policy == QueueVictimPolicy::kMostCostly) {
      for (OperatorBase* op : nonempty) {
        if (victim == nullptr ||
            network_->RemainingCost(op) > network_->RemainingCost(victim)) {
          victim = op;
        }
      }
    } else {
      victim =
          nonempty[static_cast<size_t>(rng.UniformInt(0, nonempty.size() - 1))];
    }
    // Drop the newest tuple in the victim queue: it has absorbed the least
    // processing investment so far.
    Tuple t = victim->queue().back();
    victim->queue().pop_back();
    --queued_tuples_;
    const double r = network_->RemainingCost(victim);
    outstanding_base_load_ -= r;
    if (queued_tuples_ == 0) outstanding_base_load_ = 0.0;
    counters_.shed_base_load += r;
    removed += r;
    ReleaseLineage(t, clock_, DepartureKind::kFiltered, /*shed=*/true);
    if (observer_ != nullptr) observer_->OnQueueDrop(*victim);
  }
  return removed;
}

}  // namespace ctrlshed
