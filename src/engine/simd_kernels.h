#ifndef CTRLSHED_ENGINE_SIMD_KERNELS_H_
#define CTRLSHED_ENGINE_SIMD_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace ctrlshed {
namespace kernels {

/// Which kernel implementation the process resolved to. Build-time
/// selection (CTRLSHED_SIMD=auto|avx2|scalar) decides what is compiled in;
/// `auto` builds additionally consult cpuid once at startup and honor a
/// CTRLSHED_SIMD environment override (value `scalar` or `avx2`) so a
/// single binary can be A/B-tested.
enum class SimdMode { kScalar, kAvx2 };

/// The mode every whole-chunk kernel call dispatches to (resolved once).
SimdMode ActiveSimdMode();
const char* SimdModeName(SimdMode mode);
inline const char* ActiveSimdModeName() { return SimdModeName(ActiveSimdMode()); }

// ---------------------------------------------------------------------------
// Filter predicate, integer domain.
//
// The row path decides `HashToUnit(value, id) < threshold` where HashToUnit
// is double(h >> 11) * 2^-53 of a SplitMix64 finalizer h. Because
// k = h >> 11 is an integer below 2^53 (exactly representable) and
// threshold * 2^53 is an exact double product (power-of-two scale),
//     double(k) * 2^-53 < threshold  <=>  k < ceil(threshold * 2^53).
// The kernels therefore compare pure 64-bit integers — bit-identical to the
// row path for every payload, including NaN and infinity bit patterns, and
// trivially identical between the scalar and AVX2 implementations.
// ---------------------------------------------------------------------------

/// Per-operator hash salt (must match the row path's op-id mixing).
inline uint64_t FilterSalt(int op_id) {
  return 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(op_id + 1);
}

/// SplitMix64 finalizer over the payload bits; shared by the row path's
/// HashToUnit and the columnar filter kernels.
inline uint64_t HashPayload(double value, uint64_t salt) {
  uint64_t x;
  static_assert(sizeof(x) == sizeof(value));
  __builtin_memcpy(&x, &value, sizeof(x));
  x ^= salt;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return x;
}

/// The row path's uniform [0,1) variate.
inline double HashToUnit(double value, int op_id) {
  return static_cast<double>(HashPayload(value, FilterSalt(op_id)) >> 11) *
         0x1.0p-53;
}

/// Integer pass bound: pass <=> (HashPayload >> 11) < FilterPassBound.
/// Clamped so threshold <= 0 passes nothing and threshold >= 1 everything.
inline uint64_t FilterPassBound(double threshold) {
  const double scaled = std::ceil(threshold * 0x1.0p53);
  if (scaled <= 0.0) return 0;
  if (scaled >= 0x1.0p53) return uint64_t{1} << 53;
  return static_cast<uint64_t>(scaled);
}

// ---------------------------------------------------------------------------
// Dispatchable whole-chunk kernels. Masks are byte-per-tuple (0 or 1) so
// compaction can consume them branch-free.
// ---------------------------------------------------------------------------

/// pass[i] = (HashPayload(value[i], salt) >> 11) < pass_bound.
using FilterMaskFn = void (*)(const double* value, size_t n, uint64_t salt,
                              uint64_t pass_bound, uint8_t* pass);

/// admit[i] = u[i] < drop_p ? 0 : 1 — the vector form of one Bernoulli
/// coin flip per tuple (u drawn sequentially from the shedder's RNG).
using ShedMaskFn = void (*)(const double* u, size_t n, double drop_p,
                            uint8_t* admit);

struct KernelTable {
  FilterMaskFn filter_mask;
  ShedMaskFn shed_mask;
  SimdMode mode;
};

/// The active table (resolved once per process, same policy as
/// ActiveSimdMode).
const KernelTable& Kernels();

namespace scalar {
void FilterMask(const double* value, size_t n, uint64_t salt,
                uint64_t pass_bound, uint8_t* pass);
void ShedMask(const double* u, size_t n, double drop_p, uint8_t* admit);
}  // namespace scalar

#if CTRLSHED_HAVE_AVX2
namespace avx2 {
void FilterMask(const double* value, size_t n, uint64_t salt,
                uint64_t pass_bound, uint8_t* pass);
void ShedMask(const double* u, size_t n, double drop_p, uint8_t* admit);
}  // namespace avx2
#endif

// ---------------------------------------------------------------------------
// Lane helpers used around the dispatched kernels. These are simple enough
// that the compiler vectorizes them; they need no runtime dispatch.
// ---------------------------------------------------------------------------

/// Branch-free mask compaction: copies src[i] where mask[i] != 0 to a dense
/// prefix of dst. Returns the survivor count. dst may not alias src.
template <typename T>
inline size_t CompactLane(const T* src, const uint8_t* mask, size_t n,
                          T* dst) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[k] = src[i];
    k += mask[i] != 0;
  }
  return k;
}

/// Number of set bytes in a mask.
inline size_t CountMask(const uint8_t* mask, size_t n) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) k += mask[i] != 0;
  return k;
}

/// Sequential-order partial aggregation over one value run: extends
/// (acc, max) exactly as the row path's per-tuple loop does (acc += v;
/// max = max(max, v)). Deliberately NOT reassociated into SIMD partial
/// sums: a different summation order would change aggregate values in the
/// low bits and break the columnar path's bit-identity guarantee. The win
/// here is the contiguous lane walk, not vector arithmetic.
inline void AggRun(const double* v, size_t n, double* acc, double* mx) {
  double a = *acc;
  double m = *mx;
  for (size_t i = 0; i < n; ++i) {
    a += v[i];
    m = std::max(m, v[i]);
  }
  *acc = a;
  *mx = m;
}

}  // namespace kernels
}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_SIMD_KERNELS_H_
