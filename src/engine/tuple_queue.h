#ifndef CTRLSHED_ENGINE_TUPLE_QUEUE_H_
#define CTRLSHED_ENGINE_TUPLE_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/tuple.h"

namespace ctrlshed {

/// Fixed-size block of queued tuples — the allocation unit the chunk pool
/// recycles. 128 tuples keeps a chunk well inside L1 while making the
/// pointer-chase cost of crossing chunks negligible (one per 128 ops).
///
/// Layout is STRUCT-OF-ARRAYS: each Tuple field lives in its own 64-byte
/// aligned lane so whole-chunk kernels (filter masks, map transforms,
/// aggregation partial sums, shed coin flips) can load 4-8 tuples per SIMD
/// instruction instead of striding over 48-byte rows.
///
/// AoS <-> SoA transpose contract:
///  - `Set(i, t)` scatters one row Tuple into slot i of every lane and
///    `Get(i)` gathers it back; `Get(i)` after `Set(i, t)` returns a Tuple
///    bit-identical to `t` (every field, including NaN payloads, is copied
///    through same-width lanes — doubles stay doubles, never round-trip
///    through another type).
///  - A logical queue position maps to the SAME slot index in every lane;
///    kernels may therefore combine lanes element-wise (e.g. mask from
///    `value[i]`, compact `lineage[i]`) without any permutation step.
///  - Lanes are padded/aligned independently; the chunk is NOT layout
///    compatible with `Tuple[kTuples]` and must only be accessed through
///    Get/Set or the lane pointers.
struct TupleChunk {
  static constexpr size_t kTuples = 128;

  alignas(64) double value[kTuples];
  alignas(64) double aux[kTuples];
  alignas(64) SimTime arrival_time[kTuples];
  alignas(64) LineageId lineage[kTuples];
  alignas(64) int32_t source[kTuples];
  alignas(64) int32_t port[kTuples];

  Tuple Get(size_t i) const {
    Tuple t;
    t.lineage = lineage[i];
    t.source = source[i];
    t.arrival_time = arrival_time[i];
    t.value = value[i];
    t.aux = aux[i];
    t.port = port[i];
    return t;
  }

  void Set(size_t i, const Tuple& t) {
    lineage[i] = t.lineage;
    source[i] = static_cast<int32_t>(t.source);
    arrival_time[i] = t.arrival_time;
    value[i] = t.value;
    aux[i] = t.aux;
    port[i] = static_cast<int32_t>(t.port);
  }
};

// Row-layout hygiene: the transpose above assumes these widths. A Tuple is
// three doubles + one 64-bit id + two 32-bit ints, padded to 48 bytes.
static_assert(sizeof(Tuple) == 48, "Tuple layout changed; audit TupleChunk");
static_assert(alignof(Tuple) == 8, "Tuple alignment changed");
static_assert(sizeof(LineageId) == 8 && sizeof(SimTime) == 8,
              "SoA lanes assume 64-bit lineage/time");
// Every lane starts on a cache line / full-width vector boundary.
static_assert(offsetof(TupleChunk, value) % 64 == 0, "value lane unaligned");
static_assert(offsetof(TupleChunk, aux) % 64 == 0, "aux lane unaligned");
static_assert(offsetof(TupleChunk, arrival_time) % 64 == 0,
              "arrival_time lane unaligned");
static_assert(offsetof(TupleChunk, lineage) % 64 == 0, "lineage lane unaligned");
static_assert(offsetof(TupleChunk, source) % 64 == 0, "source lane unaligned");
static_assert(offsetof(TupleChunk, port) % 64 == 0, "port lane unaligned");
static_assert(TupleChunk::kTuples % 8 == 0,
              "kernels assume whole 512-bit groups per chunk");

/// Read-only view of one contiguous run of queued tuples inside a single
/// chunk: lane pointers all offset to the run's first tuple. Valid until
/// the next queue mutation.
struct TupleLaneView {
  const double* value = nullptr;
  const double* aux = nullptr;
  const SimTime* arrival_time = nullptr;
  const LineageId* lineage = nullptr;
  const int32_t* source = nullptr;
  const int32_t* port = nullptr;
  size_t len = 0;  ///< Tuples in this run (<= TupleChunk::kTuples).
};

/// Mutable view of the contiguous FREE slots at the tail of a queue, for
/// writing compacted kernel output directly into the downstream queue.
/// Obtain with BackFill(), write up to `capacity` tuples lane-wise, then
/// CommitBack(n) — equivalent to n push_back calls. Valid until the next
/// queue mutation other than the matching CommitBack.
struct TupleLaneFill {
  double* value = nullptr;
  double* aux = nullptr;
  SimTime* arrival_time = nullptr;
  LineageId* lineage = nullptr;
  int32_t* source = nullptr;
  int32_t* port = nullptr;
  size_t capacity = 0;  ///< Free slots before the tail chunk boundary.
};

/// Free-list recycler for TupleChunks, owned by one Engine and shared by
/// every operator queue of its network. Single-threaded by construction:
/// an Engine (and therefore its queues) is only ever touched by one thread
/// at a time, so Acquire/Release need no synchronization.
///
/// Once the pool has grown to the workload's high-water mark, queue
/// push/pop cycles recycle chunks through the free list and the steady
/// state performs zero heap allocations (bench/engine_throughput
/// --check-allocs asserts this).
class TupleChunkPool {
 public:
  TupleChunkPool() = default;
  ~TupleChunkPool();

  TupleChunkPool(const TupleChunkPool&) = delete;
  TupleChunkPool& operator=(const TupleChunkPool&) = delete;

  /// Pops a recycled chunk, or heap-allocates when the free list is dry.
  TupleChunk* Acquire();

  /// Returns a chunk to the free list (never frees it back to the heap;
  /// the pool keeps its high-water mark for the engine's lifetime).
  void Release(TupleChunk* chunk);

  /// Chunks ever heap-allocated — stable once the workload's peak queue
  /// depth has been seen.
  uint64_t allocated() const { return allocated_; }
  size_t free_count() const { return free_.size(); }

 private:
  std::vector<TupleChunk*> free_;
  uint64_t allocated_ = 0;
};

/// FIFO tuple queue over pooled chunks — the replacement for the
/// std::deque<Tuple> operator queues, which allocate and free nodes under
/// load. Supports exactly the operations the engine needs: push_back,
/// pop_front (service), pop_back (newest-first in-network shedding),
/// front/back/size inspection, and the columnar run views (FrontRun /
/// PopFrontN / BackFill / CommitBack) the vectorized datapath batches over.
///
/// Layout: a power-of-two ring of chunk pointers; logical position p lives
/// in chunk (slot_head_ + p) / kTuples at slot (slot_head_ + p) % kTuples,
/// with the ring re-packed on growth. The pointer ring only grows when the
/// queue outgrows every depth it has seen before, so steady-state operation
/// touches no allocator at all.
///
/// Without a bound pool the queue heap-allocates its chunks directly —
/// the standalone mode tests and schedulers use before an Engine exists.
class TupleQueue {
 public:
  TupleQueue() = default;
  ~TupleQueue();

  TupleQueue(const TupleQueue&) = delete;
  TupleQueue& operator=(const TupleQueue&) = delete;

  /// Binds (pool != nullptr) or unbinds (nullptr) the backing chunk pool.
  /// The queue must be empty, and must not already be bound to a
  /// different pool; any retained chunk is returned to its allocator.
  void BindPool(TupleChunkPool* pool);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Front/back are gathered from the SoA lanes and returned by value; the
  // chunk rows they came from have no AoS representation to reference.
  Tuple front() const;
  Tuple back() const;

  void push_back(const Tuple& t);
  void pop_front();
  void pop_back();

  /// Lane view of the longest contiguous run starting at the queue front
  /// (the front chunk's remaining tuples). Requires a non-empty queue.
  TupleLaneView FrontRun() const;

  /// Pops the front `n` tuples; identical end state to n pop_front calls
  /// (including chunk recycling and the empty-queue slot rewind).
  void PopFrontN(size_t n);

  /// Mutable lane view of the free tail of the queue, acquiring a fresh
  /// tail chunk when the current one is full. Follow with CommitBack(n),
  /// n <= capacity; the pair is equivalent to n push_back calls.
  TupleLaneFill BackFill();
  void CommitBack(size_t n) { size_ += n; }

  /// Releases every chunk (to the pool when bound, else to the heap).
  void clear();

 private:
  TupleChunk* ChunkAt(size_t chunk_off) const {
    return ring_[(chunk_head_ + chunk_off) & (ring_.size() - 1)];
  }
  TupleChunk* AcquireChunk();
  void ReleaseChunk(TupleChunk* chunk);
  void GrowRing();

  TupleChunkPool* pool_ = nullptr;
  std::vector<TupleChunk*> ring_;  ///< Power-of-two chunk-pointer ring.
  size_t chunk_head_ = 0;          ///< Ring index of the front chunk.
  size_t num_chunks_ = 0;          ///< Live chunks, front to back.
  size_t slot_head_ = 0;           ///< Front tuple's slot in the front chunk.
  size_t size_ = 0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_TUPLE_QUEUE_H_
