#ifndef CTRLSHED_ENGINE_TUPLE_QUEUE_H_
#define CTRLSHED_ENGINE_TUPLE_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/tuple.h"

namespace ctrlshed {

/// Fixed-size block of queued tuples — the allocation unit the chunk pool
/// recycles. 128 tuples ≈ 5 KiB keeps a chunk well inside L1 while making
/// the pointer-chase cost of crossing chunks negligible (one per 128 ops).
struct TupleChunk {
  static constexpr size_t kTuples = 128;
  Tuple slots[kTuples];
};

/// Free-list recycler for TupleChunks, owned by one Engine and shared by
/// every operator queue of its network. Single-threaded by construction:
/// an Engine (and therefore its queues) is only ever touched by one thread
/// at a time, so Acquire/Release need no synchronization.
///
/// Once the pool has grown to the workload's high-water mark, queue
/// push/pop cycles recycle chunks through the free list and the steady
/// state performs zero heap allocations (bench/engine_throughput
/// --check-allocs asserts this).
class TupleChunkPool {
 public:
  TupleChunkPool() = default;
  ~TupleChunkPool();

  TupleChunkPool(const TupleChunkPool&) = delete;
  TupleChunkPool& operator=(const TupleChunkPool&) = delete;

  /// Pops a recycled chunk, or heap-allocates when the free list is dry.
  TupleChunk* Acquire();

  /// Returns a chunk to the free list (never frees it back to the heap;
  /// the pool keeps its high-water mark for the engine's lifetime).
  void Release(TupleChunk* chunk);

  /// Chunks ever heap-allocated — stable once the workload's peak queue
  /// depth has been seen.
  uint64_t allocated() const { return allocated_; }
  size_t free_count() const { return free_.size(); }

 private:
  std::vector<TupleChunk*> free_;
  uint64_t allocated_ = 0;
};

/// FIFO tuple queue over pooled chunks — the replacement for the
/// std::deque<Tuple> operator queues, which allocate and free nodes under
/// load. Supports exactly the operations the engine needs: push_back,
/// pop_front (service), pop_back (newest-first in-network shedding), and
/// front/back/size inspection.
///
/// Layout: a power-of-two ring of chunk pointers; logical position p lives
/// in chunk (slot_head_ + p) / kTuples at slot (slot_head_ + p) % kTuples,
/// with the ring re-packed on growth. The pointer ring only grows when the
/// queue outgrows every depth it has seen before, so steady-state operation
/// touches no allocator at all.
///
/// Without a bound pool the queue heap-allocates its chunks directly —
/// the standalone mode tests and schedulers use before an Engine exists.
class TupleQueue {
 public:
  TupleQueue() = default;
  ~TupleQueue();

  TupleQueue(const TupleQueue&) = delete;
  TupleQueue& operator=(const TupleQueue&) = delete;

  /// Binds (pool != nullptr) or unbinds (nullptr) the backing chunk pool.
  /// The queue must be empty, and must not already be bound to a
  /// different pool; any retained chunk is returned to its allocator.
  void BindPool(TupleChunkPool* pool);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  Tuple& front();
  const Tuple& front() const;
  Tuple& back();
  const Tuple& back() const;

  void push_back(const Tuple& t);
  void pop_front();
  void pop_back();

  /// Releases every chunk (to the pool when bound, else to the heap).
  void clear();

 private:
  TupleChunk* ChunkAt(size_t chunk_off) const {
    return ring_[(chunk_head_ + chunk_off) & (ring_.size() - 1)];
  }
  TupleChunk* AcquireChunk();
  void ReleaseChunk(TupleChunk* chunk);
  void GrowRing();

  TupleChunkPool* pool_ = nullptr;
  std::vector<TupleChunk*> ring_;  ///< Power-of-two chunk-pointer ring.
  size_t chunk_head_ = 0;          ///< Ring index of the front chunk.
  size_t num_chunks_ = 0;          ///< Live chunks, front to back.
  size_t slot_head_ = 0;           ///< Front tuple's slot in the front chunk.
  size_t size_ = 0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_TUPLE_QUEUE_H_
