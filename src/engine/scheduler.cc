#include "engine/scheduler.h"

#include <vector>

#include "common/macros.h"

namespace ctrlshed {

void SchedulerPolicy::set_quantum(size_t quantum) {
  CS_CHECK_MSG(quantum >= 1, "scheduler quantum must be >= 1");
  quantum_ = quantum;
}

OperatorBase* RoundRobinScheduler::Next(QueryNetwork* net) {
  const size_t n = net->NumOperators();
  for (size_t step = 0; step < n; ++step) {
    OperatorBase* op = net->Operator((index_ + step) % n);
    if (!op->queue().empty()) {
      index_ = (index_ + step + 1) % n;
      return op;
    }
  }
  return nullptr;
}

OperatorBase* GlobalFifoScheduler::Next(QueryNetwork* net) {
  OperatorBase* best = nullptr;
  double best_arrival = 0.0;
  const size_t n = net->NumOperators();
  for (size_t i = 0; i < n; ++i) {
    OperatorBase* op = net->Operator(i);
    if (op->queue().empty()) continue;
    const double arrival = op->queue().front().arrival_time;
    if (best == nullptr || arrival < best_arrival) {
      best = op;
      best_arrival = arrival;
    }
  }
  return best;
}

OperatorBase* LongestQueueScheduler::Next(QueryNetwork* net) {
  OperatorBase* best = nullptr;
  size_t best_len = 0;
  const size_t n = net->NumOperators();
  for (size_t i = 0; i < n; ++i) {
    OperatorBase* op = net->Operator(i);
    if (op->queue().size() > best_len) {
      best = op;
      best_len = op->queue().size();
    }
  }
  return best;
}

OperatorBase* RandomScheduler::Next(QueryNetwork* net) {
  std::vector<OperatorBase*> ready;
  const size_t n = net->NumOperators();
  for (size_t i = 0; i < n; ++i) {
    OperatorBase* op = net->Operator(i);
    if (!op->queue().empty()) ready.push_back(op);
  }
  if (ready.empty()) return nullptr;
  return ready[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(ready.size()) - 1))];
}

std::unique_ptr<SchedulerPolicy> MakeScheduler(SchedulerKind kind,
                                               uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kGlobalFifo:
      return std::make_unique<GlobalFifoScheduler>();
    case SchedulerKind::kLongestQueue:
      return std::make_unique<LongestQueueScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>(seed);
  }
  CS_CHECK_MSG(false, "unknown scheduler kind");
  return nullptr;
}

}  // namespace ctrlshed
