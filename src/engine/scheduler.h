#ifndef CTRLSHED_ENGINE_SCHEDULER_H_
#define CTRLSHED_ENGINE_SCHEDULER_H_

#include <memory>
#include <string_view>

#include "common/rng.h"
#include "engine/query_network.h"

namespace ctrlshed {

/// Operator scheduling policy: decides which operator the CPU serves next.
///
/// Borealis (as modeled in the paper) uses round-robin with FIFO queues and
/// no tuple priorities. The paper conjectures that its delay model holds
/// for "a wide range of scheduling policies that do not consider tuple
/// priorities"; the alternative policies here exist to test that conjecture
/// (see bench/ablation_schedulers).
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Returns the next operator with a non-empty queue to serve, or nullptr
  /// when the whole network is idle.
  virtual OperatorBase* Next(QueryNetwork* net) = 0;

  /// Invocation quantum granted to the operator Next just selected: the
  /// engine may run up to this many back-to-back invocations of it before
  /// re-selecting. 1 (the default) reproduces the paper's one-invocation-
  /// per-visit policy exactly; larger quanta amortize per-visit scheduling
  /// and observer overhead at the price of coarser interleaving (Aurora's
  /// train scheduling). Policies whose semantics depend on re-selecting
  /// after every tuple may override this to clamp the grant.
  virtual size_t GrantQuantum(const OperatorBase& op) {
    (void)op;
    return quantum_;
  }

  /// Sets the baseline quantum (>= 1) GrantQuantum hands out.
  void set_quantum(size_t quantum);
  size_t quantum() const { return quantum_; }

  virtual std::string_view name() const = 0;

 private:
  size_t quantum_ = 1;
};

/// Borealis' policy: cycle over operators, one invocation per visit.
class RoundRobinScheduler : public SchedulerPolicy {
 public:
  OperatorBase* Next(QueryNetwork* net) override;
  std::string_view name() const override { return "round-robin"; }

 private:
  size_t index_ = 0;
};

/// Serves the operator whose FRONT tuple arrived earliest — a global-FIFO
/// approximation that processes tuples strictly in arrival order.
class GlobalFifoScheduler : public SchedulerPolicy {
 public:
  OperatorBase* Next(QueryNetwork* net) override;
  /// Always 1: draining a train from one queue would process tuples out of
  /// global arrival order, which is this policy's whole point.
  size_t GrantQuantum(const OperatorBase& op) override {
    (void)op;
    return 1;
  }
  std::string_view name() const override { return "global-fifo"; }
};

/// Serves the operator with the longest queue (a memory-minimizing
/// heuristic in the spirit of Chain scheduling).
class LongestQueueScheduler : public SchedulerPolicy {
 public:
  OperatorBase* Next(QueryNetwork* net) override;
  std::string_view name() const override { return "longest-queue"; }
};

/// Serves a uniformly random non-empty operator.
class RandomScheduler : public SchedulerPolicy {
 public:
  explicit RandomScheduler(uint64_t seed) : rng_(seed) {}
  OperatorBase* Next(QueryNetwork* net) override;
  std::string_view name() const override { return "random"; }

 private:
  Rng rng_;
};

/// Name-keyed factory used by the experiment runner.
enum class SchedulerKind { kRoundRobin, kGlobalFifo, kLongestQueue, kRandom };

std::unique_ptr<SchedulerPolicy> MakeScheduler(SchedulerKind kind,
                                               uint64_t seed = 1);

}  // namespace ctrlshed

#endif  // CTRLSHED_ENGINE_SCHEDULER_H_
