// ctrlshed — command-line front end to the experiment harness.
//
//   ctrlshed run [key=value ...]       run one closed-loop experiment
//   ctrlshed rt  [key=value ...]       run it on wall-clock threads (src/rt)
//   ctrlshed trace [key=value ...]     generate a workload trace (stdout)
//   ctrlshed design [poles=P] [a=A]    print controller gains for a design
//   ctrlshed help
//
// Examples:
//   ctrlshed run method=ctrl workload=pareto duration=400 yd=2 seed=7
//   ctrlshed run method=aurora workload=web vary_cost=1 trace_out=run.tsv
//   ctrlshed rt method=ctrl workload=web duration=60 compress=20
//   ctrlshed trace kind=web duration=400 seed=42 > web.trace
//   ctrlshed design poles=0.7
//
// All values are plain key=value tokens; GNU-style spellings are accepted
// too (`--telemetry-dir out/` and `--telemetry-dir=out/` both mean
// `telemetry_dir=out/`). Unknown keys abort with a message listing the
// valid ones.

#include <csignal>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cluster/controller_runner.h"
#include "cluster/feeder.h"
#include "cluster/node_runner.h"
#include "common/build_info.h"
#include "control/pole_placement.h"
#include "net/socket_util.h"
#include "rt/cpu_affinity.h"
#include "rt/rt_runtime.h"
#include "runner/experiment.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_merge.h"
#include "workload/trace_io.h"
#include "workload/traces.h"

using namespace ctrlshed;

namespace {

using Args = std::map<std::string, std::string>;

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string tok = argv[i];
    const bool dashed = tok.rfind("--", 0) == 0;
    if (dashed) {
      // GNU spelling: strip the dashes, map '-' to '_', allow the value
      // as either `--key=value` or the next token.
      tok = tok.substr(2);
      for (char& c : tok) {
        if (c == '-') c = '_';
      }
      if (tok.find('=') == std::string::npos) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "option --%s needs a value\n", tok.c_str());
          std::exit(2);
        }
        args[tok] = argv[++i];
        continue;
      }
    }
    const size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "expected key=value, got '%s'\n", tok.c_str());
      std::exit(2);
    }
    args[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return args;
}

double GetDouble(Args& args, const std::string& key, double fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  const double v = std::atof(it->second.c_str());
  args.erase(it);
  return v;
}

std::string GetString(Args& args, const std::string& key,
                      const std::string& fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  std::string v = it->second;
  args.erase(it);
  return v;
}

/// Worker-shard count of `ctrlshed rt`; strictly validated (a mistyped
/// value silently coerced to 0 workers would be a confusing crash deep in
/// the runtime). 64 is far above any sane shard count on one box.
int GetWorkers(Args& args) {
  auto it = args.find("workers");
  if (it == args.end()) return 1;
  const std::string s = it->second;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v < 1 || v > 64) {
    std::fprintf(stderr,
                 "workers must be an integer in [1, 64], got '%s'\n",
                 s.c_str());
    std::exit(2);
  }
  args.erase(it);
  return static_cast<int>(v);
}

/// Telemetry-server port: -1 (absent) disables; 0 requests an ephemeral
/// port; otherwise a validated TCP port.
int GetPort(Args& args) {
  auto it = args.find("telemetry_port");
  if (it == args.end()) return -1;
  const std::string s = it->second;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v < 0 || v > 65535) {
    std::fprintf(stderr,
                 "telemetry_port must be an integer in [0, 65535], got '%s'\n",
                 s.c_str());
    std::exit(2);
  }
  args.erase(it);
  return static_cast<int>(v);
}

/// Set by SIGINT/SIGTERM; polled by the rt runtime's main-thread sleeps so
/// an interrupted run still tears down cleanly and flushes its telemetry.
std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void InstallShutdownHandler() {
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  // One signal requests the graceful flush; a second one (the handler is
  // reset to default) kills a run that is stuck tearing down.
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void RejectLeftovers(const Args& args) {
  if (args.empty()) return;
  std::fprintf(stderr, "unknown option(s):");
  for (const auto& [k, v] : args) std::fprintf(stderr, " %s", k.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

Method ParseMethod(const std::string& s) {
  if (s == "ctrl") return Method::kCtrl;
  if (s == "baseline") return Method::kBaseline;
  if (s == "aurora") return Method::kAurora;
  if (s == "pi") return Method::kPi;
  if (s == "none") return Method::kNone;
  std::fprintf(stderr, "method must be ctrl|baseline|aurora|pi|none\n");
  std::exit(2);
}

WorkloadKind ParseWorkload(const std::string& s) {
  if (s == "web") return WorkloadKind::kWeb;
  if (s == "pareto") return WorkloadKind::kPareto;
  if (s == "mmpp") return WorkloadKind::kMmpp;
  if (s == "step") return WorkloadKind::kStep;
  if (s == "sine") return WorkloadKind::kSine;
  if (s == "ramp") return WorkloadKind::kRamp;
  if (s == "constant") return WorkloadKind::kConstant;
  std::fprintf(stderr,
               "workload must be web|pareto|mmpp|step|sine|ramp|constant\n");
  std::exit(2);
}

void PrintSummary(const QosSummary& s) {
  std::printf("offered            %llu\n",
              static_cast<unsigned long long>(s.offered));
  std::printf("shed               %llu (loss %.4f)\n",
              static_cast<unsigned long long>(s.shed), s.loss_ratio);
  std::printf("departures         %llu\n",
              static_cast<unsigned long long>(s.departures));
  std::printf("mean delay         %.4f s\n", s.mean_delay);
  std::printf("p50/p95/p99 delay  %.4f / %.4f / %.4f s\n", s.p50_delay,
              s.p95_delay, s.p99_delay);
  std::printf("delayed tuples     %llu\n",
              static_cast<unsigned long long>(s.delayed_tuples));
  std::printf("accum violation    %.3f tuple-seconds\n",
              s.accumulated_violation);
  std::printf("max overshoot      %.4f s\n", s.max_overshoot);
}

int WriteRecorder(const Recorder& recorder, const std::string& trace_out) {
  if (trace_out.empty()) return 0;
  std::ofstream out(trace_out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    return 1;
  }
  // .csv extension selects the machine-readable writer.
  if (trace_out.size() >= 4 &&
      trace_out.compare(trace_out.size() - 4, 4, ".csv") == 0) {
    recorder.WriteCsv(out);
  } else {
    recorder.Write(out);
  }
  std::printf("per-period trace written to %s\n", trace_out.c_str());
  return 0;
}

void PrintTelemetryPaths(const std::string& dir) {
  if (dir.empty()) return;
  std::printf("telemetry written to %s: trace.json (open in Perfetto), "
              "metrics.jsonl, timeline.csv, timeline.jsonl\n",
              dir.c_str());
}

/// Shared telemetry flags: dir, port, and the hardened-server pair —
/// telemetry_bind picks the listen address (default loopback) and
/// telemetry_token arms bearer-token auth. The server itself refuses a
/// non-loopback bind without a token, so the unsafe combination cannot be
/// reached from here.
void SetupTelemetry(Args& args, ExperimentConfig* cfg) {
  cfg->telemetry.dir = GetString(args, "telemetry_dir", "");
  cfg->telemetry.server_port = GetPort(args);
  cfg->telemetry.server_bind_address =
      GetString(args, "telemetry_bind", "127.0.0.1");
  cfg->telemetry.server_auth_token = GetString(args, "telemetry_token", "");
  if (cfg->telemetry.server_port >= 0) {
    const std::string bind = cfg->telemetry.server_bind_address;
    const bool authed = !cfg->telemetry.server_auth_token.empty();
    cfg->telemetry.on_server_start = [bind, authed](int port) {
      std::printf("telemetry server   http://%s:%d/ "
                  "(/metrics /status /timeline /fleet)%s\n",
                  bind.c_str(), port, authed ? " [token required]" : "");
      std::fflush(stdout);
    };
  }
}

int CmdRun(Args args) {
  ExperimentConfig cfg;
  cfg.method = ParseMethod(GetString(args, "method", "ctrl"));
  cfg.workload = ParseWorkload(GetString(args, "workload", "pareto"));
  cfg.duration = GetDouble(args, "duration", 400.0);
  cfg.period = GetDouble(args, "T", 1.0);
  cfg.target_delay = GetDouble(args, "yd", 2.0);
  cfg.headroom_true = GetDouble(args, "H_true", 0.97);
  cfg.headroom_est = GetDouble(args, "H", 0.97);
  cfg.capacity_rate = GetDouble(args, "capacity", 190.0);
  cfg.vary_cost = GetDouble(args, "vary_cost", 0.0) != 0.0;
  cfg.use_queue_shedder = GetDouble(args, "queue_shed", 0.0) != 0.0;
  cfg.cost_aware_shedding = GetDouble(args, "cost_aware", 0.0) != 0.0;
  cfg.estimation_noise = GetDouble(args, "noise", 0.0);
  cfg.adapt_headroom = GetDouble(args, "adapt_H", 0.0) != 0.0;
  cfg.constant_rate = GetDouble(args, "rate", 150.0);
  cfg.pareto.beta = GetDouble(args, "beta", 1.0);
  cfg.seed = static_cast<uint64_t>(GetDouble(args, "seed", 42.0));
  const double poles = GetDouble(args, "poles", 0.7);
  cfg.gains = DesignPolePlacement(poles, poles);
  SetupTelemetry(args, &cfg);
  const std::string trace_out = GetString(args, "trace_out", "");
  RejectLeftovers(args);

  InstallFlightDumpHandlers();
  ExperimentResult r = RunExperiment(cfg);
  PrintSummary(r.summary);
  std::printf("loop health        %s\n", r.health.Summary().c_str());
  PrintTelemetryPaths(cfg.telemetry.dir);
  return WriteRecorder(r.recorder, trace_out);
}

int CmdRt(Args args) {
  RtRunConfig cfg;
  cfg.base.method = ParseMethod(GetString(args, "method", "ctrl"));
  cfg.base.workload = ParseWorkload(GetString(args, "workload", "pareto"));
  cfg.base.duration = GetDouble(args, "duration", 60.0);
  cfg.base.period = GetDouble(args, "T", 1.0);
  cfg.base.target_delay = GetDouble(args, "yd", 2.0);
  cfg.base.headroom_true = GetDouble(args, "H_true", 0.97);
  cfg.base.headroom_est = GetDouble(args, "H", 0.97);
  cfg.base.capacity_rate = GetDouble(args, "capacity", 190.0);
  cfg.base.vary_cost = GetDouble(args, "vary_cost", 0.0) != 0.0;
  cfg.base.use_queue_shedder = GetDouble(args, "queue_shed", 0.0) != 0.0;
  cfg.base.cost_aware_shedding = GetDouble(args, "cost_aware", 0.0) != 0.0;
  cfg.base.estimation_noise = GetDouble(args, "noise", 0.0);
  cfg.base.adapt_headroom = GetDouble(args, "adapt_H", 0.0) != 0.0;
  cfg.base.constant_rate = GetDouble(args, "rate", 150.0);
  cfg.base.pareto.beta = GetDouble(args, "beta", 1.0);
  cfg.base.seed = static_cast<uint64_t>(GetDouble(args, "seed", 42.0));
  const double poles = GetDouble(args, "poles", 0.7);
  cfg.base.gains = DesignPolePlacement(poles, poles);

  cfg.time_compression = GetDouble(args, "compress", 20.0);
  cfg.ring_capacity =
      static_cast<size_t>(GetDouble(args, "ring", 4096.0));
  const double batch = GetDouble(args, "batch", 1.0);
  if (batch < 1.0 || batch > 4096.0 || batch != std::floor(batch)) {
    std::fprintf(stderr, "batch must be an integer in [1, 4096], got %g\n",
                 batch);
    return 2;
  }
  cfg.batch = static_cast<size_t>(batch);
  cfg.batch_adaptive = GetDouble(args, "batch_adaptive", 0.0) != 0.0;
  cfg.pin_cpus = GetString(args, "pin_cpus", "");
  cfg.cost_mode = GetDouble(args, "busy_spin", 0.0) != 0.0
                      ? RtCostMode::kBusySpin
                      : RtCostMode::kSleep;
  cfg.workers = GetWorkers(args);
  SetupTelemetry(args, &cfg.base);
  const std::string trace_out = GetString(args, "trace_out", "");
  RejectLeftovers(args);

  // Clean CLI error — an actionable message and exit 2 — instead of the
  // runtime's CS_CHECK abort for configs the rt path cannot run.
  const std::string config_error = RtConfigError(cfg);
  if (!config_error.empty()) {
    std::fprintf(stderr, "ctrlshed rt: %s\n", config_error.c_str());
    return 2;
  }

  InstallShutdownHandler();
  InstallFlightDumpHandlers();
  cfg.stop = &g_stop;

  std::printf("replaying %.0f trace seconds at %gx compression (~%.1f wall s)"
              " ...\n",
              cfg.base.duration, cfg.time_compression,
              cfg.base.duration / cfg.time_compression);
  RtRunResult r = RunRtExperiment(cfg);
  if (r.interrupted) {
    std::printf("interrupted — partial run; telemetry flushed completely\n");
  }
  PrintSummary(r.summary);
  if (r.workers > 1) std::printf("workers            %d\n", r.workers);
  for (size_t i = 0; i < r.shards.size(); ++i) {
    const RtShardSummary& s = r.shards[i];
    std::printf("  shard %zu          offered %llu  entry_shed %llu  "
                "ring_drop %llu  in_net %llu  departed %llu\n",
                i, static_cast<unsigned long long>(s.offered),
                static_cast<unsigned long long>(s.entry_shed),
                static_cast<unsigned long long>(s.ring_dropped),
                static_cast<unsigned long long>(s.queue_shed),
                static_cast<unsigned long long>(s.departed));
  }
  std::printf("ring drops         %llu\n",
              static_cast<unsigned long long>(r.ring_dropped));
  std::printf("loop health        %s\n", r.health.Summary().c_str());
  std::printf("wall time          %.2f s\n", r.wall_seconds);
  std::printf("pump interval      p50/p95/p99 %.3f / %.3f / %.3f ms\n",
              r.pump_intervals.Quantile(0.50) * 1e3,
              r.pump_intervals.Quantile(0.95) * 1e3,
              r.pump_intervals.Quantile(0.99) * 1e3);
  std::printf("actuation lateness p50/p95/p99 %.3f / %.3f / %.3f ms\n",
              r.actuation_lateness.Quantile(0.50) * 1e3,
              r.actuation_lateness.Quantile(0.95) * 1e3,
              r.actuation_lateness.Quantile(0.99) * 1e3);
  if (!cfg.base.telemetry.dir.empty()) {
    std::printf("trace events       %llu captured, %llu dropped; "
                "%llu timeline rows\n",
                static_cast<unsigned long long>(r.trace_events),
                static_cast<unsigned long long>(r.trace_dropped),
                static_cast<unsigned long long>(r.timeline_rows));
    PrintTelemetryPaths(cfg.base.telemetry.dir);
  }
  if (r.telemetry_port >= 0) {
    // Client drops sit beside the tracer's dropped_events above so a
    // silently truncated live feed is visible in the same summary.
    std::printf("sse feed           port %d: %llu connections, %llu rows "
                "streamed, %llu dropped to slow clients\n",
                r.telemetry_port,
                static_cast<unsigned long long>(r.sse_clients),
                static_cast<unsigned long long>(r.sse_rows_published),
                static_cast<unsigned long long>(r.sse_rows_dropped));
  }
  return WriteRecorder(r.recorder, trace_out);
}

int CmdTrace(Args args) {
  const std::string kind = GetString(args, "kind", "pareto");
  const double duration = GetDouble(args, "duration", 400.0);
  const uint64_t seed = static_cast<uint64_t>(GetDouble(args, "seed", 42.0));
  RateTrace trace;
  if (kind == "web") {
    trace = MakeWebTrace(duration, WebTraceParams{}, seed);
  } else if (kind == "pareto") {
    ParetoTraceParams p;
    p.beta = GetDouble(args, "beta", 1.0);
    trace = MakeParetoTrace(duration, p, seed);
  } else if (kind == "mmpp") {
    trace = MakeMmppTrace(duration, MmppTraceParams{}, seed);
  } else if (kind == "cost") {
    trace = MakeCostTrace(duration, CostTraceParams{}, seed);
  } else {
    std::fprintf(stderr, "kind must be web|pareto|mmpp|cost\n");
    return 2;
  }
  RejectLeftovers(args);
  WriteTrace(trace, std::cout);
  return 0;
}

/// Validated integer in [lo, hi] under `key`, or `fallback` when absent.
long GetInt(Args& args, const std::string& key, long fallback, long lo,
            long hi) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  const std::string s = it->second;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "%s must be an integer in [%ld, %ld], got '%s'\n",
                 key.c_str(), lo, hi, s.c_str());
    std::exit(2);
  }
  args.erase(it);
  return v;
}

int CmdNode(Args args) {
  ClusterNodeConfig cfg;
  cfg.node_id = static_cast<uint32_t>(GetInt(args, "id", 0, 0, 1 << 20));
  cfg.workers = GetWorkers(args);
  cfg.ingress_port = static_cast<int>(GetInt(args, "port", 0, 0, 65535));
  cfg.controller_host = GetString(args, "controller_host", "127.0.0.1");
  cfg.controller_port =
      static_cast<int>(GetInt(args, "controller_port", 0, 0, 65535));
  cfg.base.duration = GetDouble(args, "duration", 60.0);
  cfg.base.period = GetDouble(args, "T", 1.0);
  cfg.base.target_delay = GetDouble(args, "yd", 2.0);
  cfg.base.headroom_true = GetDouble(args, "H_true", 0.97);
  cfg.base.headroom_est = GetDouble(args, "H", 0.97);
  cfg.base.capacity_rate = GetDouble(args, "capacity", 190.0);
  cfg.base.vary_cost = GetDouble(args, "vary_cost", 0.0) != 0.0;
  cfg.base.adapt_headroom = GetDouble(args, "adapt_H", 0.0) != 0.0;
  cfg.base.seed = static_cast<uint64_t>(GetDouble(args, "seed", 42.0));
  cfg.time_compression = GetDouble(args, "compress", 20.0);
  cfg.ring_capacity = static_cast<size_t>(GetDouble(args, "ring", 4096.0));
  cfg.batch = static_cast<size_t>(GetInt(args, "batch", 1, 1, 4096));
  cfg.pin_cpus = GetString(args, "pin_cpus", "");
  {
    std::string pin_error;
    ParsePinCpus(cfg.pin_cpus, &pin_error);
    if (!pin_error.empty()) {
      std::fprintf(stderr, "ctrlshed node: %s\n", pin_error.c_str());
      return 2;
    }
  }
  cfg.cost_mode = GetDouble(args, "busy_spin", 0.0) != 0.0
                      ? RtCostMode::kBusySpin
                      : RtCostMode::kSleep;
  SetupTelemetry(args, &cfg.base);
  RejectLeftovers(args);

  InstallShutdownHandler();
  InstallFlightDumpHandlers();
  cfg.stop = &g_stop;
  cfg.on_ready = [&cfg](int port) {
    std::printf("node %u: ingress listening on 127.0.0.1:%d (%d workers)\n",
                cfg.node_id, port, cfg.workers);
    std::fflush(stdout);
  };

  ClusterNodeResult r = RunClusterNode(cfg);
  if (r.interrupted) std::printf("interrupted — partial run\n");
  std::printf("offered            %llu\n",
              static_cast<unsigned long long>(r.offered));
  std::printf("entry shed         %llu (alpha %.3f at end)\n",
              static_cast<unsigned long long>(r.entry_shed), r.final_alpha);
  std::printf("ring drops         %llu\n",
              static_cast<unsigned long long>(r.ring_dropped));
  std::printf("departed           %llu\n",
              static_cast<unsigned long long>(r.departed));
  std::printf("ingress            %llu connections, %llu frames, "
              "%llu rejected, %llu corrupt streams\n",
              static_cast<unsigned long long>(r.ingress_connections),
              static_cast<unsigned long long>(r.ingress_frames),
              static_cast<unsigned long long>(r.ingress_rejected),
              static_cast<unsigned long long>(r.corrupt_streams));
  std::printf("control            %s, %llu reports sent, %llu actuations "
              "applied, %llu rejected\n",
              r.controller_connected ? "connected" : "standalone",
              static_cast<unsigned long long>(r.reports_sent),
              static_cast<unsigned long long>(r.actuations_applied),
              static_cast<unsigned long long>(r.control_rejected));
  std::printf("loop health        %s\n", r.health.Summary().c_str());
  std::printf("wall time          %.2f s\n", r.wall_seconds);
  return 0;
}

int CmdCluster(Args args) {
  ClusterControllerConfig cfg;
  cfg.port = static_cast<int>(GetInt(args, "port", 0, 0, 65535));
  cfg.base.duration = GetDouble(args, "duration", 60.0);
  cfg.base.period = GetDouble(args, "T", 1.0);
  cfg.base.target_delay = GetDouble(args, "yd", 2.0);
  cfg.base.headroom_true = GetDouble(args, "H_true", 0.97);
  cfg.base.headroom_est = GetDouble(args, "H", 0.97);
  cfg.base.capacity_rate = GetDouble(args, "capacity", 190.0);
  cfg.base.use_queue_shedder = GetDouble(args, "queue_shed", 0.0) != 0.0;
  cfg.base.cost_aware_shedding = GetDouble(args, "cost_aware", 0.0) != 0.0;
  cfg.base.adapt_headroom = GetDouble(args, "adapt_H", 0.0) != 0.0;
  const double poles = GetDouble(args, "poles", 0.7);
  cfg.base.gains = DesignPolePlacement(poles, poles);
  cfg.stale_periods =
      static_cast<int>(GetInt(args, "stale_periods", 3, 1, 1000));
  cfg.min_nodes = static_cast<int>(GetInt(args, "min_nodes", 0, 0, 1024));
  cfg.time_compression = GetDouble(args, "compress", 20.0);
  const bool gate = GetDouble(args, "gate", 0.0) != 0.0;
  const std::string trace_out = GetString(args, "trace_out", "");
  SetupTelemetry(args, &cfg.base);
  RejectLeftovers(args);

  InstallShutdownHandler();
  InstallFlightDumpHandlers();
  cfg.stop = &g_stop;
  cfg.on_ready = [](int port) {
    std::printf("cluster controller: control channel on 127.0.0.1:%d\n", port);
    std::fflush(stdout);
  };

  ClusterControllerResult r = RunClusterController(cfg);
  if (r.interrupted) std::printf("interrupted — partial run\n");
  std::printf("nodes              %d seen (%d workers total), %d active at "
              "end\n",
              r.nodes_seen, r.total_workers, r.final_active);
  std::printf("ticks              %d (%d idle)\n", r.ticks, r.idle_ticks);
  std::printf("messages           %llu hellos, %llu reports, %llu acks, "
              "%llu rejected, %llu corrupt streams\n",
              static_cast<unsigned long long>(r.hellos),
              static_cast<unsigned long long>(r.reports),
              static_cast<unsigned long long>(r.acks),
              static_cast<unsigned long long>(r.rejected),
              static_cast<unsigned long long>(r.corrupt_streams));
  std::printf("loop health        %s\n", r.health.Summary().c_str());
  std::printf("wall time          %.2f s\n", r.wall_seconds);
  const int wret = WriteRecorder(r.recorder, trace_out);
  if (!gate) return wret;

  // The rt_soak tracking gate on the aggregate plant: over the overloaded
  // periods (fin at or above the cluster's total capacity) the converged
  // delay estimate must sit within +/-20% of the setpoint; a run that
  // never overloaded must keep the estimate at or below the setpoint band.
  const double yd = cfg.base.target_delay;
  const double agg_capacity =
      static_cast<double>(r.total_workers) * cfg.base.capacity_rate;
  const int kConvergedAfter = 4;
  double sum = 0.0, sum_all = 0.0;
  int n = 0, n_all = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.k <= kConvergedAfter) continue;
    sum_all += row.m.y_hat;
    ++n_all;
    if (row.m.fin < agg_capacity) continue;
    sum += row.m.y_hat;
    ++n;
  }
  const double mean_yhat = n > 0 ? sum / n : 0.0;
  const double rel_err = yd > 0.0 ? std::abs(mean_yhat - yd) / yd : 0.0;
  const double mean_all = n_all > 0 ? sum_all / n_all : 0.0;
  bool pass;
  if (n >= 8) {
    pass = rel_err <= 0.20;
    std::printf("%s: converged mean y %.3f s vs setpoint %.3f s "
                "(error %.1f%%, %d overloaded periods)\n",
                pass ? "PASS" : "FAIL", mean_yhat, yd, 100.0 * rel_err, n);
  } else {
    pass = n_all >= 8 && mean_all <= 1.2 * yd;
    std::printf("%s: aggregate never overloaded (%d overloaded periods); "
                "mean y %.3f s stays at or below the setpoint band\n",
                pass ? "PASS" : "FAIL", n, mean_all);
  }
  return (pass && wret == 0) ? 0 : 1;
}

int CmdFeed(Args args) {
  ClusterFeedConfig cfg;
  cfg.host = GetString(args, "host", "127.0.0.1");
  cfg.port = static_cast<int>(GetInt(args, "port", 0, 1, 65535));
  cfg.source_id = static_cast<uint32_t>(GetInt(args, "source", 0, 0, 1 << 20));
  cfg.sources = static_cast<int>(GetInt(args, "sources", 1, 1, 64));
  cfg.rate_scale = GetDouble(args, "scale", 1.0);
  cfg.base.workload = ParseWorkload(GetString(args, "workload", "web"));
  cfg.base.duration = GetDouble(args, "duration", 60.0);
  cfg.base.constant_rate = GetDouble(args, "rate", 150.0);
  cfg.base.pareto.beta = GetDouble(args, "beta", 1.0);
  if (args.count("mean_rate") != 0) {
    cfg.base.web.mean_rate = GetDouble(args, "mean_rate", 0.0);
  }
  cfg.base.seed = static_cast<uint64_t>(GetDouble(args, "seed", 42.0));
  cfg.time_compression = GetDouble(args, "compress", 20.0);
  RejectLeftovers(args);

  InstallShutdownHandler();
  cfg.stop = &g_stop;

  ClusterFeedResult r = RunClusterFeeder(cfg);
  if (!r.connected) {
    std::fprintf(stderr, "feed: cannot reach %s:%d\n", cfg.host.c_str(),
                 cfg.port);
    return 1;
  }
  if (r.interrupted) std::printf("interrupted — partial feed\n");
  std::printf("sent %llu tuples in %llu frames over %.2f wall s\n",
              static_cast<unsigned long long>(r.tuples_sent),
              static_cast<unsigned long long>(r.frames_sent), r.wall_seconds);
  return 0;
}

/// `ctrlshed trace-merge [out=FILE] [require_period_overlap=0|1] IN...`
/// Hand-parsed: bare tokens are input trace.json paths, so the shared
/// key=value parser (which rejects them) does not apply.
int CmdTraceMerge(int argc, char** argv) {
  std::string out_path = "trace_merged.json";
  bool require_overlap = false;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      tok = tok.substr(2);
      for (char& c : tok) {
        if (c == '-') c = '_';
      }
      if (tok.find('=') == std::string::npos) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "option --%s needs a value\n", tok.c_str());
          return 2;
        }
        tok += '=';
        tok += argv[++i];
      }
    }
    const size_t eq = tok.find('=');
    if (eq != std::string::npos && eq > 0) {
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "out") {
        out_path = val;
        continue;
      }
      if (key == "require_period_overlap") {
        require_overlap = std::atof(val.c_str()) != 0.0;
        continue;
      }
      std::fprintf(stderr, "unknown trace-merge option '%s'\n", key.c_str());
      return 2;
    }
    inputs.push_back(tok);
  }
  if (inputs.size() < 2) {
    std::fprintf(stderr,
                 "trace-merge needs at least two input trace.json files\n");
    return 2;
  }
  TraceMergeResult res;
  if (!MergeTraceFiles(inputs, out_path, &res)) {
    std::fprintf(stderr, "trace-merge: %s\n", res.error.c_str());
    return 1;
  }
  for (size_t i = 0; i < res.files; ++i) {
    std::printf("  track %-16s %zu events, clock offset %+lld us\n",
                res.labels[i].c_str(), res.events_per_file[i],
                static_cast<long long>(res.offsets_us[i]));
  }
  std::printf("merged %zu events from %zu files into %s\n", res.events,
              res.files, out_path.c_str());
  if (res.common_periods.empty()) {
    std::printf("no controller period id appears in every track\n");
    if (require_overlap) return 1;
  } else {
    std::printf("%zu controller period(s) traced across every track "
                "(e.g. period %lld)\n",
                res.common_periods.size(),
                static_cast<long long>(res.common_periods.front()));
  }
  return 0;
}

int CmdDesign(Args args) {
  const double p = GetDouble(args, "poles", 0.7);
  const double a = GetDouble(args, "a", -0.8);
  RejectLeftovers(args);
  ControllerGains g = DesignPolePlacement(p, p, a);
  std::printf("closed-loop poles at %.3f (damping 1)\n", p);
  std::printf("controller C(z) = H (b0 z + b1) / (c T (z + a))\n");
  std::printf("  b0 = %.6f\n  b1 = %.6f\n  a  = %.6f\n", g.b0, g.b1, g.a);
  std::printf("control law: u(k) = H/(cT) (b0 e(k) + b1 e(k-1)) - a u(k-1)\n");
  return 0;
}

void PrintHelp() {
  std::printf(
      "ctrlshed — control-based load shedding for stream databases\n\n"
      "  ctrlshed run    [method=ctrl|baseline|aurora|pi|none]\n"
      "                  [workload=web|pareto|mmpp|step|sine|ramp|constant]\n"
      "                  [duration=400] [T=1] [yd=2] [H=0.97] [H_true=0.97]\n"
      "                  [capacity=190] [rate=150] [beta=1.0] [poles=0.7]\n"
      "                  [vary_cost=0|1] [queue_shed=0|1] [cost_aware=0|1]\n"
      "                  [noise=0] [adapt_H=0|1] [seed=42] [trace_out=FILE]\n"
      "                  [telemetry_dir=DIR] [telemetry_port=N]\n"
      "  ctrlshed rt     [method=...] [workload=...] [duration=60] [T=1]\n"
      "                  [yd=2] [H=0.97] [H_true=0.97] [capacity=190]\n"
      "                  [rate=150] [beta=1.0] [poles=0.7] [vary_cost=0|1]\n"
      "                  [queue_shed=0|1] [cost_aware=0|1] [adapt_H=0|1]\n"
      "                  [compress=20] [ring=4096] [busy_spin=0|1]\n"
      "                  [workers=1] [batch=1] [batch_adaptive=0|1]\n"
      "                  [pin_cpus=auto|LIST] [seed=42] [trace_out=FILE]\n"
      "                  [telemetry_dir=DIR] [telemetry_port=N]\n"
      "                  (wall-clock threaded runtime; compress = trace\n"
      "                  seconds replayed per wall second; workers=N in\n"
      "                  [1,64] partitions the plant across N engine\n"
      "                  shards under one aggregate feedback loop;\n"
      "                  batch=B in [1,4096] sets the datapath batch —\n"
      "                  SPSC pop run length and invocation quantum —\n"
      "                  with batch=1 the bit-identical per-tuple path;\n"
      "                  batch_adaptive=1 lets the controller grow each\n"
      "                  worker's quantum past B under backlog and shrink\n"
      "                  it back with latency headroom; pin_cpus=auto pins\n"
      "                  shard i to CPU i%%ncpu, pin_cpus=0,2,... pins to\n"
      "                  an explicit list;\n"
      "                  vary_cost/queue_shed/cost_aware mirror the sim\n"
      "                  knobs: the Fig. 14 cost trace sampled on each\n"
      "                  worker's clock, and in-network shedding from\n"
      "                  controller-planned per-period queue budgets)\n"
      "\n"
      "  telemetry_dir=DIR (or --telemetry-dir DIR) writes trace.json\n"
      "  (Chrome trace-event JSON; open in Perfetto), metrics.jsonl\n"
      "  (periodic metric snapshots), and timeline.csv/.jsonl (per-period\n"
      "  q, y_hat, e, u, v, alpha, loss, lateness, actuation site,\n"
      "  queue_shed) into DIR.\n"
      "  telemetry_port=N (or --telemetry-port N) serves live telemetry on\n"
      "  http://127.0.0.1:N — GET / (dashboard), /metrics (Prometheus),\n"
      "  /timeline (SSE rows identical to timeline.jsonl), /status (JSON),\n"
      "  /health (control-loop verdict JSON; 503 when critical),\n"
      "  /fleet (cluster membership JSON on a controller), and\n"
      "  POST /debug/dump (write a flight-recorder dump on demand).\n"
      "  SIGUSR1 also dumps; CS_CHECK failures and fatal signals dump\n"
      "  automatically to <telemetry_dir>/ctrlshed.flightdump.json (or the\n"
      "  working directory without telemetry_dir).\n"
      "  N=0 picks an ephemeral port (printed at startup). Works with or\n"
      "  without telemetry_dir. SIGINT/SIGTERM on `ctrlshed rt` stops the\n"
      "  run early and still flushes complete trace/timeline files.\n"
      "  telemetry_bind=ADDR serves on a non-loopback address; it then\n"
      "  REQUIRES telemetry_token=SECRET (requests authenticate with\n"
      "  `Authorization: Bearer SECRET` or `?token=SECRET`; anything else\n"
      "  gets 401). Loopback binds stay open by default.\n"
      "  trace_out=FILE writes the per-period table (CSV if FILE ends in\n"
      "  .csv).\n"
      "  ctrlshed trace  [kind=web|pareto|mmpp|cost] [duration=400]\n"
      "                  [beta=1.0] [seed=42]            (trace to stdout)\n"
      "  ctrlshed trace-merge [out=trace_merged.json]\n"
      "                  [require_period_overlap=0|1] TRACE.json...\n"
      "                  (joins per-process trace.json files into one\n"
      "                  Perfetto timeline: per-process tracks, clock\n"
      "                  offsets from the cluster HELLO handshake applied,\n"
      "                  controller period ids intersected across tracks;\n"
      "                  require_period_overlap=1 exits nonzero unless one\n"
      "                  period id was traced in every input)\n"
      "  ctrlshed design [poles=0.7] [a=-0.8]    (print controller gains)\n"
      "\n"
      "  ctrlshed cluster [port=0] [duration=60] [T=1] [yd=2] [H=0.97]\n"
      "                  [capacity=190] [poles=0.7] [queue_shed=0|1]\n"
      "                  [cost_aware=0|1] [stale_periods=3]\n"
      "                  [min_nodes=0] [compress=20] [gate=0|1]\n"
      "                  [trace_out=FILE] [telemetry_dir=DIR]\n"
      "                  [telemetry_port=N]\n"
      "                  (cluster controller: nodes connect to `port`,\n"
      "                  their stats aggregate into one plant, v(k) fans\n"
      "                  back out — with queue_shed=1 the commands carry\n"
      "                  in-network plan flags the nodes act on; gate=1\n"
      "                  exits nonzero unless the converged delay tracks\n"
      "                  the setpoint within 20%%)\n"
      "  ctrlshed node   [id=0] [workers=1] [port=0]\n"
      "                  [controller_host=127.0.0.1] [controller_port=P]\n"
      "                  [duration=60] [T=1] [yd=2] [H=0.97] [H_true=0.97]\n"
      "                  [capacity=190] [vary_cost=0|1] [compress=20]\n"
      "                  [ring=4096] [batch=1] [pin_cpus=auto|LIST]\n"
      "                  [busy_spin=0|1] [seed=42]\n"
      "                  [telemetry_dir=DIR] [telemetry_port=N]\n"
      "                  (cluster member: serves tuple ingress on `port`,\n"
      "                  reports per-period stats upstream, applies the\n"
      "                  controller's v(k) slice to its entry shedders;\n"
      "                  keeps shedding locally if the controller is gone)\n"
      "  ctrlshed feed   host=H port=P [source=0] [sources=1] [scale=1]\n"
      "                  [workload=web|...] [mean_rate=R] [rate=150]\n"
      "                  [duration=60] [compress=20] [seed=42]\n"
      "                  (replays the workload trace into a node's tuple\n"
      "                  ingress; scale multiplies the offered rate)\n"
      "  ctrlshed version                        (print the build id)\n"
      "  ctrlshed help\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Process-wide: a peer that closes its socket mid-write must surface as
  // an EPIPE error code, never as a fatal signal (cluster roles write to
  // sockets from several threads).
  IgnoreSigPipe();
  if (argc < 2 || std::strcmp(argv[1], "help") == 0) {
    PrintHelp();
    return argc < 2 ? 2 : 0;
  }
  const std::string cmd = argv[1];
  if (cmd == "version" || cmd == "--version" || cmd == "-V") {
    std::printf("%s\n", BuildInfoLine().c_str());
    return 0;
  }
  if (cmd == "run") return CmdRun(ParseArgs(argc, argv, 2));
  if (cmd == "rt") return CmdRt(ParseArgs(argc, argv, 2));
  if (cmd == "node") return CmdNode(ParseArgs(argc, argv, 2));
  if (cmd == "cluster") return CmdCluster(ParseArgs(argc, argv, 2));
  if (cmd == "feed") return CmdFeed(ParseArgs(argc, argv, 2));
  if (cmd == "trace") return CmdTrace(ParseArgs(argc, argv, 2));
  if (cmd == "trace-merge") return CmdTraceMerge(argc, argv);
  if (cmd == "design") return CmdDesign(ParseArgs(argc, argv, 2));
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  PrintHelp();
  return 2;
}
