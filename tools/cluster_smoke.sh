#!/usr/bin/env bash
# Two-node loopback cluster smoke: one controller, two `ctrlshed node`
# processes, one feeder per node pushing the web trace at ~2x a single
# worker's capacity through real TCP ingress. The controller runs the
# rt_soak tracking gate (gate=1): over the overloaded periods the
# converged aggregate delay estimate must sit within +/-20% of the
# setpoint. The script additionally requires a clean shutdown with
# nonzero departed tuples on BOTH nodes and zero protocol rejects.
#
# Fleet-observability assertions ride along: every process writes
# telemetry, a mid-run scrape of the controller's /metrics must expose
# node-labeled series for BOTH nodes in one page, /fleet must report both
# nodes fresh, the controller's /health must answer 200 with an "ok"
# verdict mid-run, and after shutdown `ctrlshed trace-merge` over the
# three per-process trace files must find a controller period id present
# in every track.
#
# A second, feederless health-flip phase then verifies the stale-node
# diagnostic end to end: with both nodes up /health is "ok"; SIGKILLing
# one node must flip it to "degraded" with a stale_node reason (not
# critical — one node survives).
#
# Usage: tools/cluster_smoke.sh [path/to/ctrlshed]
# Env:   DURATION (trace seconds, default 60 — shorter windows weight
#        burst lulls enough to brush the gate), COMPRESS (default 10),
#        ARTIFACT_DIR (if set, keeps the merged trace + the mid-run
#        controller metrics snapshot there for CI upload).
set -euo pipefail

BIN=${1:-build/tools/ctrlshed}
DURATION=${DURATION:-60}
COMPRESS=${COMPRESS:-10}

OUT=$(mktemp -d)
PIDS=()
cleanup() {
  local p
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$OUT"
}
trap cleanup EXIT

# Every role binds an ephemeral port and announces it on stdout; poll the
# log instead of racing a pre-picked port number.
wait_port() { # <logfile> <sed -E capture regex> -> port on stdout
  local log=$1 re=$2 port i
  for i in $(seq 1 100); do
    port=$(sed -nE "s/.*${re}.*/\1/p" "$log" 2>/dev/null | head -n 1)
    if [[ -n ${port:-} ]]; then echo "$port"; return 0; fi
    sleep 0.1
  done
  echo "cluster_smoke: timed out waiting for port in $log" >&2
  cat "$log" >&2 || true
  return 1
}

field() { # <logfile> <label> -> first numeric value of that summary line
  sed -nE "s/^$2 +([0-9]+).*/\1/p" "$1" | head -n 1
}

"$BIN" cluster port=0 duration="$DURATION" compress="$COMPRESS" \
  min_nodes=2 gate=1 telemetry_dir="$OUT/tele_ctl" telemetry_port=0 \
  >"$OUT/ctl.log" 2>&1 &
CTL_PID=$!
PIDS+=("$CTL_PID")
CTL_PORT=$(wait_port "$OUT/ctl.log" 'control channel on 127\.0\.0\.1:([0-9]+)')
HTTP_PORT=$(wait_port "$OUT/ctl.log" 'telemetry server +http:\/\/127\.0\.0\.1:([0-9]+)\/')

NODE_PIDS=()
for id in 0 1; do
  "$BIN" node id="$id" workers=1 port=0 controller_port="$CTL_PORT" \
    duration="$DURATION" compress="$COMPRESS" \
    telemetry_dir="$OUT/tele_n$id" >"$OUT/n$id.log" 2>&1 &
  NODE_PIDS+=("$!")
  PIDS+=("$!")
done
N0_PORT=$(wait_port "$OUT/n0.log" 'listening on 127\.0\.0\.1:([0-9]+)')
N1_PORT=$(wait_port "$OUT/n1.log" 'listening on 127\.0\.0\.1:([0-9]+)')

# 380 tuples/s mean into a 190/s worker: both nodes must shed to track yd.
FEED_PIDS=()
for id in 0 1; do
  port=$N0_PORT
  [[ $id == 1 ]] && port=$N1_PORT
  "$BIN" feed host=127.0.0.1 port="$port" workload=web mean_rate=380 \
    duration="$DURATION" compress="$COMPRESS" seed=$((42 + id)) \
    source="$id" >"$OUT/f$id.log" 2>&1 &
  FEED_PIDS+=("$!")
  PIDS+=("$!")
done

FAIL=0

# Mid-run federation scrape: one controller /metrics page must carry
# node="0" AND node="1" labeled series (each node's piggybacked snapshot
# folded into the controller registry), and /fleet must list both nodes
# fresh. Poll — the first snapshots land with the first stats reports.
FED_OK=0
for i in $(seq 1 100); do
  curl -sf "http://127.0.0.1:$HTTP_PORT/metrics" >"$OUT/metrics.prom" || true
  curl -sf "http://127.0.0.1:$HTTP_PORT/fleet" >"$OUT/fleet.json" || true
  if grep -q 'node="0"' "$OUT/metrics.prom" 2>/dev/null &&
     grep -q 'node="1"' "$OUT/metrics.prom" 2>/dev/null &&
     grep -q '"id":0' "$OUT/fleet.json" 2>/dev/null &&
     grep -q '"id":1' "$OUT/fleet.json" 2>/dev/null &&
     ! grep -q '"fresh":false' "$OUT/fleet.json" 2>/dev/null; then
    FED_OK=1
    break
  fi
  sleep 0.1
done
if [[ $FED_OK -ne 1 ]]; then
  echo "cluster_smoke: federation scrape never showed both nodes" >&2
  echo "--- /metrics ---" >&2; cat "$OUT/metrics.prom" >&2 || true
  echo "--- /fleet ---" >&2; cat "$OUT/fleet.json" >&2 || true
  FAIL=1
else
  echo "federation: both nodes visible in one /metrics scrape and /fleet"
fi

# Mid-run health: the controller's /health must answer 200 with an "ok"
# verdict while both nodes report. Poll — shedding at 2x overload is a
# healthy regime (alpha ~0.5 sits below the saturation level), and the
# warmup window reports ok while the estimators fill.
HEALTH_OK=0
for i in $(seq 1 100); do
  code=$(curl -s -o "$OUT/health.json" -w '%{http_code}' \
    "http://127.0.0.1:$HTTP_PORT/health" || true)
  if [[ ${code:-} == 200 ]] &&
     grep -q '"verdict":"ok"' "$OUT/health.json" 2>/dev/null; then
    HEALTH_OK=1
    break
  fi
  sleep 0.1
done
if [[ $HEALTH_OK -ne 1 ]]; then
  echo "cluster_smoke: controller /health never reported ok mid-run" >&2
  cat "$OUT/health.json" >&2 || true
  FAIL=1
else
  echo "health: controller /health ok mid-run"
fi

for p in "${FEED_PIDS[@]}"; do wait "$p" || { echo "feeder exited nonzero" >&2; FAIL=1; }; done
for p in "${NODE_PIDS[@]}"; do wait "$p" || { echo "node exited nonzero" >&2; FAIL=1; }; done
CTL_STATUS=0
wait "$CTL_PID" || CTL_STATUS=$?
PIDS=()

echo "--- controller ---"; cat "$OUT/ctl.log"
for id in 0 1; do echo "--- node $id ---"; cat "$OUT/n$id.log"; done

if [[ $CTL_STATUS -ne 0 ]]; then
  echo "cluster_smoke: controller tracking gate FAILED (exit $CTL_STATUS)" >&2
  FAIL=1
fi
for id in 0 1; do
  departed=$(field "$OUT/n$id.log" departed)
  if [[ -z ${departed:-} || $departed -eq 0 ]]; then
    echo "cluster_smoke: node $id departed nothing" >&2
    FAIL=1
  fi
  if ! grep -qE 'ingress .* 0 rejected, 0 corrupt streams' "$OUT/n$id.log"; then
    echo "cluster_smoke: node $id saw protocol rejects" >&2
    FAIL=1
  fi
  if ! grep -q 'control            connected' "$OUT/n$id.log"; then
    echo "cluster_smoke: node $id never joined the controller" >&2
    FAIL=1
  fi
done
if ! grep -qE 'messages .* 0 rejected, 0 corrupt streams' "$OUT/ctl.log"; then
  echo "cluster_smoke: controller saw protocol rejects" >&2
  FAIL=1
fi

# Cross-process trace correlation: merge the three per-process traces into
# one Perfetto timeline and require at least one controller period id to
# appear on spans in every track (require_period_overlap=1 exits nonzero
# otherwise).
if "$BIN" trace-merge "$OUT/tele_ctl/trace.json" "$OUT/tele_n0/trace.json" \
    "$OUT/tele_n1/trace.json" out="$OUT/merged_trace.json" \
    require_period_overlap=1 >"$OUT/merge.log" 2>&1; then
  cat "$OUT/merge.log"
else
  echo "cluster_smoke: trace-merge failed or found no common period id" >&2
  cat "$OUT/merge.log" >&2 || true
  FAIL=1
fi

# --- Health-flip phase ----------------------------------------------------
# A fresh, feederless two-node cluster (no tracking gate — there is no
# load to track). Once both nodes report, /health must say "ok"; after
# SIGKILLing node 1 the monitor must age it out within stale_periods
# control ticks and flip the verdict to "degraded" with a stale_node
# reason. The surviving node keeps the fleet from going critical.
"$BIN" cluster port=0 duration=600 compress="$COMPRESS" min_nodes=2 \
  telemetry_dir="$OUT/tele_ctl2" telemetry_port=0 >"$OUT/ctl2.log" 2>&1 &
CTL2_PID=$!
PIDS+=("$CTL2_PID")
CTL2_PORT=$(wait_port "$OUT/ctl2.log" 'control channel on 127\.0\.0\.1:([0-9]+)')
HTTP2_PORT=$(wait_port "$OUT/ctl2.log" 'telemetry server +http:\/\/127\.0\.0\.1:([0-9]+)\/')

N2_PIDS=()
for id in 0 1; do
  "$BIN" node id="$id" workers=1 port=0 controller_port="$CTL2_PORT" \
    duration=600 compress="$COMPRESS" \
    telemetry_dir="$OUT/tele_kn$id" >"$OUT/kn$id.log" 2>&1 &
  N2_PIDS+=("$!")
  PIDS+=("$!")
done

health2() { # <out-file> <pattern...> -> 0 once /health matches every pattern
  local out=$1 i p ok
  shift
  for i in $(seq 1 150); do
    curl -sf "http://127.0.0.1:$HTTP2_PORT/health" >"$out" 2>/dev/null || true
    ok=1
    for p in "$@"; do
      grep -q "$p" "$out" 2>/dev/null || { ok=0; break; }
    done
    if [[ $ok -eq 1 ]]; then return 0; fi
    sleep 0.1
  done
  return 1
}

# A node that never completed its hello can't go stale — require both
# nodes known (and none stale) before pulling one out.
if health2 "$OUT/health_before_kill.json" \
    '"verdict":"ok"' '"known_nodes":2' '"stale_nodes":0'; then
  echo "health-flip: ok with both nodes up"
else
  echo "cluster_smoke: kill-cluster /health never reported ok with 2 nodes" >&2
  cat "$OUT/health_before_kill.json" >&2 || true
  cat "$OUT/ctl2.log" >&2 || true
  FAIL=1
fi

kill -9 "${N2_PIDS[1]}" 2>/dev/null || true
if health2 "$OUT/health_after_kill.json" \
    '"verdict":"degraded"' '"stale_node"'; then
  echo "health-flip: killed node flipped /health to degraded (stale_node)"
else
  echo "cluster_smoke: /health never went degraded/stale_node after kill" >&2
  cat "$OUT/health_after_kill.json" >&2 || true
  cat "$OUT/ctl2.log" >&2 || true
  FAIL=1
fi

# Tear the kill-cluster down; node 1 died by SIGKILL, so nonzero exits
# are expected here and not part of the verdict.
kill "$CTL2_PID" "${N2_PIDS[0]}" 2>/dev/null || true
for p in "$CTL2_PID" "${N2_PIDS[@]}"; do wait "$p" 2>/dev/null || true; done
PIDS=()

if [[ -n ${ARTIFACT_DIR:-} ]]; then
  mkdir -p "$ARTIFACT_DIR"
  cp -f "$OUT/merged_trace.json" "$ARTIFACT_DIR/" 2>/dev/null || true
  cp -f "$OUT/metrics.prom" "$ARTIFACT_DIR/controller_metrics.prom" 2>/dev/null || true
  cp -f "$OUT/fleet.json" "$ARTIFACT_DIR/" 2>/dev/null || true
  cp -f "$OUT/health.json" "$ARTIFACT_DIR/" 2>/dev/null || true
  cp -f "$OUT/health_after_kill.json" "$ARTIFACT_DIR/" 2>/dev/null || true
fi

if [[ $FAIL -ne 0 ]]; then
  echo "cluster_smoke: FAIL" >&2
  exit 1
fi
echo "cluster_smoke: PASS"
