#!/usr/bin/env bash
# Two-node loopback cluster smoke: one controller, two `ctrlshed node`
# processes, one feeder per node pushing the web trace at ~2x a single
# worker's capacity through real TCP ingress. The controller runs the
# rt_soak tracking gate (gate=1): over the overloaded periods the
# converged aggregate delay estimate must sit within +/-20% of the
# setpoint. The script additionally requires a clean shutdown with
# nonzero departed tuples on BOTH nodes and zero protocol rejects.
#
# Usage: tools/cluster_smoke.sh [path/to/ctrlshed]
# Env:   DURATION (trace seconds, default 60 — shorter windows weight
#        burst lulls enough to brush the gate), COMPRESS (default 10).
set -euo pipefail

BIN=${1:-build/tools/ctrlshed}
DURATION=${DURATION:-60}
COMPRESS=${COMPRESS:-10}

OUT=$(mktemp -d)
PIDS=()
cleanup() {
  local p
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$OUT"
}
trap cleanup EXIT

# Every role binds an ephemeral port and announces it on stdout; poll the
# log instead of racing a pre-picked port number.
wait_port() { # <logfile> <sed -E capture regex> -> port on stdout
  local log=$1 re=$2 port i
  for i in $(seq 1 100); do
    port=$(sed -nE "s/.*${re}.*/\1/p" "$log" 2>/dev/null | head -n 1)
    if [[ -n ${port:-} ]]; then echo "$port"; return 0; fi
    sleep 0.1
  done
  echo "cluster_smoke: timed out waiting for port in $log" >&2
  cat "$log" >&2 || true
  return 1
}

field() { # <logfile> <label> -> first numeric value of that summary line
  sed -nE "s/^$2 +([0-9]+).*/\1/p" "$1" | head -n 1
}

"$BIN" cluster port=0 duration="$DURATION" compress="$COMPRESS" \
  min_nodes=2 gate=1 >"$OUT/ctl.log" 2>&1 &
CTL_PID=$!
PIDS+=("$CTL_PID")
CTL_PORT=$(wait_port "$OUT/ctl.log" 'control channel on 127\.0\.0\.1:([0-9]+)')

NODE_PIDS=()
for id in 0 1; do
  "$BIN" node id="$id" workers=1 port=0 controller_port="$CTL_PORT" \
    duration="$DURATION" compress="$COMPRESS" >"$OUT/n$id.log" 2>&1 &
  NODE_PIDS+=("$!")
  PIDS+=("$!")
done
N0_PORT=$(wait_port "$OUT/n0.log" 'listening on 127\.0\.0\.1:([0-9]+)')
N1_PORT=$(wait_port "$OUT/n1.log" 'listening on 127\.0\.0\.1:([0-9]+)')

# 380 tuples/s mean into a 190/s worker: both nodes must shed to track yd.
FEED_PIDS=()
for id in 0 1; do
  port=$N0_PORT
  [[ $id == 1 ]] && port=$N1_PORT
  "$BIN" feed host=127.0.0.1 port="$port" workload=web mean_rate=380 \
    duration="$DURATION" compress="$COMPRESS" seed=$((42 + id)) \
    source="$id" >"$OUT/f$id.log" 2>&1 &
  FEED_PIDS+=("$!")
  PIDS+=("$!")
done

FAIL=0
for p in "${FEED_PIDS[@]}"; do wait "$p" || { echo "feeder exited nonzero" >&2; FAIL=1; }; done
for p in "${NODE_PIDS[@]}"; do wait "$p" || { echo "node exited nonzero" >&2; FAIL=1; }; done
CTL_STATUS=0
wait "$CTL_PID" || CTL_STATUS=$?
PIDS=()

echo "--- controller ---"; cat "$OUT/ctl.log"
for id in 0 1; do echo "--- node $id ---"; cat "$OUT/n$id.log"; done

if [[ $CTL_STATUS -ne 0 ]]; then
  echo "cluster_smoke: controller tracking gate FAILED (exit $CTL_STATUS)" >&2
  FAIL=1
fi
for id in 0 1; do
  departed=$(field "$OUT/n$id.log" departed)
  if [[ -z ${departed:-} || $departed -eq 0 ]]; then
    echo "cluster_smoke: node $id departed nothing" >&2
    FAIL=1
  fi
  if ! grep -qE 'ingress .* 0 rejected, 0 corrupt streams' "$OUT/n$id.log"; then
    echo "cluster_smoke: node $id saw protocol rejects" >&2
    FAIL=1
  fi
  if ! grep -q 'control            connected' "$OUT/n$id.log"; then
    echo "cluster_smoke: node $id never joined the controller" >&2
    FAIL=1
  fi
done
if ! grep -qE 'messages .* 0 rejected, 0 corrupt streams' "$OUT/ctl.log"; then
  echo "cluster_smoke: controller saw protocol rejects" >&2
  FAIL=1
fi

if [[ $FAIL -ne 0 ]]; then
  echo "cluster_smoke: FAIL" >&2
  exit 1
fi
echo "cluster_smoke: PASS"
